// Package huffman implements canonical Huffman coding over arbitrary
// integer symbol alphabets.
//
// The paper's wire format (step 4: "Huffman-code all MTF indices") and
// the flatezip substrate both use this package. Codes are canonical:
// only the code-length table needs to be transmitted; both ends derive
// identical codes by assigning values in (length, symbol) order. Lengths
// can be limited (the flatezip container limits them to 15 bits, like
// DEFLATE) using a heuristic that demotes over-long codes.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitio"
)

// MaxBits is the largest code length this package will ever produce.
const MaxBits = 32

var (
	// ErrNoSymbols is returned when a code is built from an all-zero
	// frequency table.
	ErrNoSymbols = errors.New("huffman: no symbols with nonzero frequency")
	// ErrBadLengths is returned when a received code-length table is not
	// a valid (complete or under-full) prefix code.
	ErrBadLengths = errors.New("huffman: invalid code length table")
	// ErrUnknownSymbol is returned by Encode for a symbol absent from
	// the code.
	ErrUnknownSymbol = errors.New("huffman: symbol has no code")
)

// Code is a canonical Huffman code for symbols 0..n-1. Symbols with
// Lengths[s] == 0 do not participate in the code.
type Code struct {
	Lengths []uint8  // bits per symbol; 0 = absent
	codes   []uint32 // left-justified-at-length canonical code values
	decode  *decodeTable

	// Two-level decode table, built lazily on first Decode so
	// encode-only codes never pay for it. Guarded by a Once because
	// indexed containers share one Code across decoder goroutines.
	fastOnce sync.Once
	fast     *fastTable
}

type decodeTable struct {
	// counts[l] = number of codes of length l; offsets[l] = first
	// canonical code value of length l; symbols sorted by (length, symbol).
	firstCode   [MaxBits + 1]uint32
	firstSymIdx [MaxBits + 1]int
	count       [MaxBits + 1]int
	symbols     []int
	maxLen      uint8
}

type buildNode struct {
	freq        int64
	sym         int // >=0 leaf, -1 internal
	left, right *buildNode
}

type buildHeap []*buildNode

func (h buildHeap) Len() int { return len(h) }
func (h buildHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	// Deterministic tie-break so codes are reproducible across runs.
	return h[i].sym < h[j].sym
}
func (h buildHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *buildHeap) Push(x interface{}) { *h = append(*h, x.(*buildNode)) }
func (h *buildHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical code from symbol frequencies. freqs[s]
// is the occurrence count of symbol s; zero-frequency symbols get no
// code. maxLen caps code lengths (0 means MaxBits). A single-symbol
// alphabet yields a 1-bit code, so every symbol always costs >=1 bit.
func Build(freqs []int64, maxLen uint8) (*Code, error) {
	if maxLen == 0 || maxLen > MaxBits {
		maxLen = MaxBits
	}
	nsym := 0
	for s, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", s)
		}
		if f > 0 {
			nsym++
		}
	}
	if nsym == 0 {
		return nil, ErrNoSymbols
	}
	// All tree nodes live in one arena: nsym leaves plus at most nsym-1
	// internal nodes. The capacity is exact, so the backing array never
	// reallocates and pointers into it stay valid while the heap runs.
	nodes := make([]buildNode, 0, 2*nsym-1)
	h := make(buildHeap, 0, nsym)
	for s, f := range freqs {
		if f > 0 {
			nodes = append(nodes, buildNode{freq: f, sym: s})
			h = append(h, &nodes[len(nodes)-1])
		}
	}
	lengths := make([]uint8, len(freqs))
	if len(h) == 1 {
		lengths[h[0].sym] = 1
		return FromLengths(lengths)
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*buildNode)
		b := heap.Pop(&h).(*buildNode)
		nodes = append(nodes, buildNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
		heap.Push(&h, &nodes[len(nodes)-1])
	}
	root := h[0]
	assignDepths(root, 0, lengths)
	limitLengths(lengths, maxLen)
	return FromLengths(lengths)
}

func assignDepths(n *buildNode, depth uint8, lengths []uint8) {
	if n.sym >= 0 {
		if depth == 0 {
			depth = 1
		}
		lengths[n.sym] = depth
		return
	}
	assignDepths(n.left, depth+1, lengths)
	assignDepths(n.right, depth+1, lengths)
}

// limitLengths enforces maxLen using the standard Kraft-sum repair:
// clamp over-long codes, then while the Kraft sum exceeds 1, lengthen
// the deepest still-shortenable codes; finally tighten any slack.
func limitLengths(lengths []uint8, maxLen uint8) {
	over := false
	for _, l := range lengths {
		if l > maxLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	type ls struct {
		sym int
		len uint8
	}
	var active []ls
	for s, l := range lengths {
		if l > 0 {
			if l > maxLen {
				l = maxLen
			}
			active = append(active, ls{s, l})
		}
	}
	// Kraft sum in units of 2^-maxLen.
	kraft := func() int64 {
		var k int64
		for _, a := range active {
			k += int64(1) << (maxLen - a.len)
		}
		return k
	}
	limit := int64(1) << maxLen
	// Sort shallowest first; demote the deepest demotable entries.
	sort.Slice(active, func(i, j int) bool { return active[i].len < active[j].len })
	for kraft() > limit {
		// Find the deepest entry with len < maxLen... actually we must
		// *increase* lengths of codes to reduce the Kraft sum.
		demoted := false
		for i := len(active) - 1; i >= 0; i-- {
			if active[i].len < maxLen {
				active[i].len++
				demoted = true
				break
			}
		}
		if !demoted {
			break // cannot repair; FromLengths will reject
		}
	}
	// Tighten: if the sum is under-full, promote deep codes where possible.
	for {
		k := kraft()
		if k >= limit {
			break
		}
		promoted := false
		for i := len(active) - 1; i >= 0; i-- {
			if active[i].len > 1 && k+(int64(1)<<(maxLen-active[i].len)) <= limit {
				active[i].len--
				promoted = true
				break
			}
		}
		if !promoted {
			break
		}
	}
	for _, a := range active {
		lengths[a.sym] = a.len
	}
}

// FromLengths constructs the canonical code implied by a code-length
// table (the decoder-side constructor). The table must satisfy the
// Kraft inequality.
func FromLengths(lengths []uint8) (*Code, error) {
	c := &Code{Lengths: append([]uint8(nil), lengths...)}
	var dt decodeTable
	var kraft int64
	limit := int64(1) << MaxBits
	for s, l := range lengths {
		if l > MaxBits {
			return nil, ErrBadLengths
		}
		if l > 0 {
			dt.count[l]++
			kraft += int64(1) << (MaxBits - l)
			if kraft > limit {
				return nil, ErrBadLengths
			}
			if l > dt.maxLen {
				dt.maxLen = l
			}
			_ = s
		}
	}
	if dt.maxLen == 0 {
		return nil, ErrNoSymbols
	}
	// Canonical first-code per length.
	var code uint32
	idx := 0
	for l := uint8(1); l <= dt.maxLen; l++ {
		code <<= 1
		dt.firstCode[l] = code
		dt.firstSymIdx[l] = idx
		code += uint32(dt.count[l])
		idx += dt.count[l]
	}
	// Symbols in (length, symbol) order.
	dt.symbols = make([]int, 0, idx)
	c.codes = make([]uint32, len(lengths))
	next := dt.firstCode
	for l := uint8(1); l <= dt.maxLen; l++ {
		for s, sl := range lengths {
			if sl == l {
				dt.symbols = append(dt.symbols, s)
				c.codes[s] = next[l]
				next[l]++
			}
		}
	}
	c.decode = &dt
	return c, nil
}

// Encode writes the code for symbol s to bw.
func (c *Code) Encode(bw *bitio.Writer, s int) error {
	if s < 0 || s >= len(c.Lengths) || c.Lengths[s] == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownSymbol, s)
	}
	return bw.WriteBits(uint64(c.codes[s]), uint(c.Lengths[s]))
}

// Two-level decode table sizing. The root table resolves codes up to
// rootBitsMax bits in one peek; longer codes indirect through one
// per-prefix subtable of up to subBitsMax extra bits. Codes deeper than
// rootBitsMax+subBitsMax — and any prefixes past the total entry budget,
// which bounds what a hostile length table can make us allocate — fall
// back to the bit-walking decoder.
const (
	rootBitsMax    = 10
	subBitsMax     = 12
	subEntryBudget = 1 << 16
)

// dEntry is one decode-table slot. bits==0 means "no (table-resolvable)
// code here"; sub marks an indirection, with sym the subtable index and
// bits its width.
type dEntry struct {
	sym  int32
	bits uint8
	sub  bool
}

type fastTable struct {
	rootBits uint
	root     []dEntry
	subs     [][]dEntry
}

func (c *Code) fastTab() *fastTable {
	c.fastOnce.Do(func() { c.fast = c.buildFast() })
	return c.fast
}

func (c *Code) buildFast() *fastTable {
	dt := c.decode
	f := &fastTable{rootBits: uint(dt.maxLen)}
	if f.rootBits > rootBitsMax {
		f.rootBits = rootBitsMax
	}
	f.root = make([]dEntry, 1<<f.rootBits)
	for s, l := range c.Lengths {
		if l == 0 || uint(l) > f.rootBits {
			continue
		}
		start := int(c.codes[s]) << (f.rootBits - uint(l))
		n := 1 << (f.rootBits - uint(l))
		for i := 0; i < n; i++ {
			f.root[start+i] = dEntry{sym: int32(s), bits: l}
		}
	}
	if uint(dt.maxLen) <= f.rootBits {
		return f
	}
	// Long codes: size each prefix's subtable by the deepest code that
	// shares it, capped at subBitsMax.
	width := map[uint32]uint{}
	for s, l := range c.Lengths {
		if uint(l) <= f.rootBits {
			continue
		}
		p := c.codes[s] >> (uint(l) - f.rootBits)
		w := uint(l) - f.rootBits
		if w > subBitsMax {
			w = subBitsMax
		}
		if w > width[p] {
			width[p] = w
		}
	}
	prefixes := make([]uint32, 0, len(width))
	for p := range width {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
	subIdx := map[uint32]int32{}
	total := 0
	for _, p := range prefixes {
		w := width[p]
		if total+(1<<w) > subEntryBudget {
			continue
		}
		subIdx[p] = int32(len(f.subs))
		f.root[p] = dEntry{sym: int32(len(f.subs)), bits: uint8(w), sub: true}
		f.subs = append(f.subs, make([]dEntry, 1<<w))
		total += 1 << w
	}
	for s, l := range c.Lengths {
		if uint(l) <= f.rootBits {
			continue
		}
		p := c.codes[s] >> (uint(l) - f.rootBits)
		si, ok := subIdx[p]
		if !ok {
			continue
		}
		w := width[p]
		if uint(l) > f.rootBits+w {
			continue // deeper than the capped subtable: slow path
		}
		low := c.codes[s] & (1<<(uint(l)-f.rootBits) - 1)
		start := int(low) << (f.rootBits + w - uint(l))
		n := 1 << (f.rootBits + w - uint(l))
		sub := f.subs[si]
		for i := 0; i < n; i++ {
			sub[start+i] = dEntry{sym: int32(s), bits: l}
		}
	}
	return f
}

// Decode reads one symbol from br: one Peek resolves most codes through
// the root table, long codes take one more through a subtable, and
// anything the tables cannot resolve (stream tail shorter than the
// peek, under-full code regions, ultra-deep codes past the table
// budget) falls back to DecodeSlow, which also reproduces the exact
// error and bit-consumption behavior of the original walker.
func (c *Code) Decode(br *bitio.Reader) (int, error) {
	f := c.fastTab()
	v, avail := br.Peek(f.rootBits)
	e := f.root[v]
	if e.sub {
		w := uint(e.bits)
		v2, avail2 := br.Peek(f.rootBits + w)
		se := f.subs[e.sym][v2&(1<<w-1)]
		if se.bits != 0 && uint(se.bits) <= avail2 {
			br.Skip(uint(se.bits))
			return int(se.sym), nil
		}
		return c.DecodeSlow(br)
	}
	if e.bits != 0 && uint(e.bits) <= avail {
		br.Skip(uint(e.bits))
		return int(e.sym), nil
	}
	return c.DecodeSlow(br)
}

// DecodeSlow reads one symbol by walking the canonical code one bit at
// a time. It is the reference oracle for Decode (the differential fuzz
// tests compare the two) and the fallback for inputs the tables do not
// cover.
func (c *Code) DecodeSlow(br *bitio.Reader) (int, error) {
	dt := c.decode
	var code uint32
	for l := uint8(1); l <= dt.maxLen; l++ {
		b, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if dt.count[l] > 0 && code-dt.firstCode[l] < uint32(dt.count[l]) {
			return dt.symbols[dt.firstSymIdx[l]+int(code-dt.firstCode[l])], nil
		}
	}
	return 0, ErrBadLengths
}

// CodeLen reports the bit length assigned to symbol s (0 if absent).
func (c *Code) CodeLen(s int) uint8 {
	if s < 0 || s >= len(c.Lengths) {
		return 0
	}
	return c.Lengths[s]
}

// NumSymbols reports the alphabet size the code was built over.
func (c *Code) NumSymbols() int { return len(c.Lengths) }

// EncodedSize returns the total bit cost of coding the given frequency
// profile with this code, ignoring absent symbols with zero frequency.
func (c *Code) EncodedSize(freqs []int64) int64 {
	var bits int64
	for s, f := range freqs {
		if f > 0 && s < len(c.Lengths) {
			bits += f * int64(c.Lengths[s])
		}
	}
	return bits
}

// WriteLengths serializes the code-length table so a decoder can rebuild
// the code with FromLengths. Format: uvarint symbol count, then a simple
// run-length scheme over lengths: (length byte, uvarint run).
func (c *Code) WriteLengths(bw *bitio.Writer) error {
	if err := writeUvarint(bw, uint64(len(c.Lengths))); err != nil {
		return err
	}
	i := 0
	for i < len(c.Lengths) {
		j := i
		for j < len(c.Lengths) && c.Lengths[j] == c.Lengths[i] {
			j++
		}
		if err := bw.WriteBits(uint64(c.Lengths[i]), 6); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(j-i)); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// ReadLengths deserializes a table written by WriteLengths and returns
// the reconstructed code.
func ReadLengths(br *bitio.Reader) (*Code, error) {
	n, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, ErrBadLengths
	}
	lengths := make([]uint8, 0, n)
	for uint64(len(lengths)) < n {
		l, err := br.ReadBits(6)
		if err != nil {
			return nil, err
		}
		run, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if run == 0 || uint64(len(lengths))+run > n {
			return nil, ErrBadLengths
		}
		for k := uint64(0); k < run; k++ {
			lengths = append(lengths, uint8(l))
		}
	}
	return FromLengths(lengths)
}

func writeUvarint(bw *bitio.Writer, v uint64) error {
	for v >= 0x80 {
		if err := bw.WriteByte(byte(v) | 0x80); err != nil {
			return err
		}
		v >>= 7
	}
	return bw.WriteByte(byte(v))
}

func readUvarint(br *bitio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, ErrBadLengths
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
