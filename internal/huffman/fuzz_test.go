package huffman

// Differential fuzzing of the table-driven decoder against the bit-walk
// oracle it replaced: for any code and any payload (valid or garbage),
// Decode and DecodeSlow must emit the same symbols, the same errors, and
// consume exactly the same number of bits — the attribution profiler
// depends on BitsRead exactness, and the wire format depends on the
// symbols.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// specCode derives a code from fuzz bytes. Even specs build from a
// frequency profile (always valid, shallow); odd specs interpret bytes
// as raw code lengths (often invalid, but reaches deep and under-full
// tables the frequency path cannot).
func specCode(spec []byte) *Code {
	if len(spec) < 2 {
		return nil
	}
	mode, spec := spec[0], spec[1:]
	if len(spec) > 2048 {
		spec = spec[:2048]
	}
	if mode%2 == 0 {
		freqs := make([]int64, len(spec))
		for i, b := range spec {
			freqs[i] = int64(b)
		}
		maxLen := uint8(mode/2%MaxBits) + 1
		c, err := Build(freqs, maxLen)
		if err != nil {
			return nil
		}
		return c
	}
	lengths := make([]uint8, len(spec))
	for i, b := range spec {
		lengths[i] = b % (MaxBits + 1)
	}
	c, err := FromLengths(lengths)
	if err != nil {
		return nil
	}
	return c
}

// diffDecode runs both decoders over payload and fails on any
// divergence in symbols, errors, or bit positions.
func diffDecode(t *testing.T, c *Code, payload []byte) {
	t.Helper()
	// A fresh Code for the oracle so its fast table is never built and
	// cannot mask a table-construction bug.
	oracle, err := FromLengths(c.Lengths)
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	fast := bitio.NewReaderBytes(payload)
	slow := bitio.NewReaderBytes(payload)
	for step := 0; ; step++ {
		s1, e1 := c.Decode(fast)
		s2, e2 := oracle.DecodeSlow(slow)
		if e1 != e2 {
			t.Fatalf("step %d: error divergence: fast=%v slow=%v", step, e1, e2)
		}
		if e1 == nil && s1 != s2 {
			t.Fatalf("step %d: symbol divergence: fast=%d slow=%d", step, s1, s2)
		}
		if fast.BitsRead() != slow.BitsRead() {
			t.Fatalf("step %d: bit-position divergence: fast=%d slow=%d",
				step, fast.BitsRead(), slow.BitsRead())
		}
		if e1 != nil {
			return
		}
	}
}

func FuzzDecodeVsSlow(f *testing.F) {
	f.Add([]byte{0, 5, 3, 2, 1, 1}, []byte{0xA7, 0x3B, 0xFF, 0x00})
	f.Add([]byte{1, 1, 2, 3, 4, 5, 6, 7, 8}, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{3, 2, 2, 2, 2}, []byte{0x1B, 0xE4})
	// Deep-code seed: two maximal-length siblings under a skewed tree.
	deep := []byte{1}
	for i := 0; i < 31; i++ {
		deep = append(deep, byte(i+1))
	}
	deep = append(deep, 32, 32)
	f.Add(deep, []byte{0xFF, 0xFF, 0xFF, 0xFE, 0x01, 0x80})
	f.Fuzz(func(t *testing.T, spec []byte, payload []byte) {
		c := specCode(spec)
		if c == nil {
			t.Skip()
		}
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		diffDecode(t, c, payload)
	})
}

// TestDecodeVsSlowRandom is the always-on slice of the differential
// check: random skewed codes over coherent encoded streams plus junk
// tails, so `go test` exercises the oracle without the fuzzer.
func TestDecodeVsSlowRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300) + 2
		freqs := make([]int64, n)
		for s := range freqs {
			// Zipf-ish skew produces a wide spread of code lengths.
			freqs[s] = int64(rng.Intn(1<<uint(rng.Intn(16))) + 1)
		}
		// At least ceil(log2(n)) bits so limitLengths can always repair.
		maxLen := uint8(rng.Intn(MaxBits-9) + 10)
		c, err := Build(freqs, maxLen)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		for i := 0; i < 500; i++ {
			s := rng.Intn(n)
			if c.CodeLen(s) == 0 {
				continue
			}
			if err := c.Encode(bw, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		payload := buf.Bytes()
		// Half the trials append garbage so the tail exercises the
		// error paths too.
		if trial%2 == 0 {
			junk := make([]byte, rng.Intn(16))
			rng.Read(junk)
			payload = append(payload, junk...)
		}
		diffDecode(t, c, payload)
	}
}

// TestDeepCodeFallback pins the slow-path fallback: a code deeper than
// rootBitsMax+subBitsMax still decodes correctly and bit-exactly.
func TestDeepCodeFallback(t *testing.T) {
	// Chain of lengths 1..31 plus two 32-bit siblings is a complete
	// code with codes far past the table budget depth.
	var lengths []uint8
	for i := 1; i <= 31; i++ {
		lengths = append(lengths, uint8(i))
	}
	lengths = append(lengths, 32, 32)
	c, err := FromLengths(lengths)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	want := []int{0, 31, 32, 15, 30, 0, 32}
	for _, s := range want {
		if err := c.Encode(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	diffDecode(t, c, buf.Bytes())
	br := bitio.NewReaderBytes(buf.Bytes())
	for i, s := range want {
		got, err := c.Decode(br)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != s {
			t.Fatalf("symbol %d: got %d, want %d", i, got, s)
		}
	}
}
