package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestBuildSimple(t *testing.T) {
	// Classic skewed distribution: more frequent symbols get shorter codes.
	freqs := []int64{45, 13, 12, 16, 9, 5}
	c, err := Build(freqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeLen(0) >= c.CodeLen(5) {
		t.Errorf("most frequent symbol len %d should be < rarest len %d", c.CodeLen(0), c.CodeLen(5))
	}
	// Kraft equality for a complete code.
	var kraft float64
	for s := range freqs {
		kraft += 1 / float64(int64(1)<<c.CodeLen(s))
	}
	if kraft != 1.0 {
		t.Errorf("Kraft sum = %v, want 1.0", kraft)
	}
}

func TestSingleSymbol(t *testing.T) {
	c, err := Build([]int64{0, 7, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeLen(1) != 1 {
		t.Errorf("single-symbol code length = %d, want 1", c.CodeLen(1))
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := c.Encode(bw, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bitio.NewReader(&buf)
	for i := 0; i < 5; i++ {
		s, err := c.Decode(br)
		if err != nil || s != 1 {
			t.Fatalf("decode %d: got %d, %v", i, s, err)
		}
	}
}

func TestNoSymbols(t *testing.T) {
	if _, err := Build([]int64{0, 0, 0}, 0); err != ErrNoSymbols {
		t.Errorf("err = %v, want ErrNoSymbols", err)
	}
}

func TestNegativeFrequency(t *testing.T) {
	if _, err := Build([]int64{1, -2}, 0); err == nil {
		t.Error("expected error for negative frequency")
	}
}

func TestUnknownSymbol(t *testing.T) {
	c, err := Build([]int64{1, 1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	if err := c.Encode(bw, 2); err == nil {
		t.Error("expected error encoding zero-frequency symbol")
	}
	if err := c.Encode(bw, 99); err == nil {
		t.Error("expected error encoding out-of-range symbol")
	}
}

func TestRoundTrip(t *testing.T) {
	freqs := []int64{100, 50, 25, 12, 6, 3, 2, 1}
	c, err := Build(freqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []int{0, 1, 2, 3, 4, 5, 6, 7, 0, 0, 0, 1, 1, 2, 7}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	for _, s := range msg {
		if err := c.Encode(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bitio.NewReader(&buf)
	for i, want := range msg {
		s, err := c.Decode(br)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if s != want {
			t.Fatalf("decode %d = %d, want %d", i, s, want)
		}
	}
}

func TestLengthsRoundTrip(t *testing.T) {
	freqs := []int64{9, 0, 4, 4, 0, 0, 1, 2, 88}
	c, err := Build(freqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	if err := c.WriteLengths(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadLengths(bitio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Lengths) != len(c.Lengths) {
		t.Fatalf("length table size mismatch: %d vs %d", len(c2.Lengths), len(c.Lengths))
	}
	for s := range c.Lengths {
		if c.Lengths[s] != c2.Lengths[s] {
			t.Errorf("symbol %d: length %d vs %d", s, c.Lengths[s], c2.Lengths[s])
		}
		if c.codes[s] != c2.codes[s] {
			t.Errorf("symbol %d: code %b vs %b", s, c.codes[s], c2.codes[s])
		}
	}
}

func TestLengthLimit(t *testing.T) {
	// Fibonacci-like frequencies force a deep tree without limiting.
	freqs := make([]int64, 24)
	a, b := int64(1), int64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	c, err := Build(freqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for s, l := range c.Lengths {
		if l > 8 {
			t.Errorf("symbol %d length %d exceeds limit 8", s, l)
		}
	}
	// The limited code must still decode what it encodes.
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	for s := range freqs {
		if err := c.Encode(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bitio.NewReader(&buf)
	for s := range freqs {
		got, err := c.Decode(br)
		if err != nil || got != s {
			t.Fatalf("decode symbol %d: got %d, %v", s, got, err)
		}
	}
}

func TestBadLengths(t *testing.T) {
	// Oversubscribed: three codes of length 1 violate Kraft.
	if _, err := FromLengths([]uint8{1, 1, 1}); err != ErrBadLengths {
		t.Errorf("err = %v, want ErrBadLengths", err)
	}
}

func TestEncodedSize(t *testing.T) {
	freqs := []int64{4, 2, 1, 1}
	c, err := Build(freqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for s, f := range freqs {
		want += f * int64(c.CodeLen(s))
	}
	if got := c.EncodedSize(freqs); got != want {
		t.Errorf("EncodedSize = %d, want %d", got, want)
	}
}

func TestOptimality(t *testing.T) {
	// For a uniform power-of-two alphabet the code must be fixed-length.
	freqs := []int64{5, 5, 5, 5, 5, 5, 5, 5}
	c, err := Build(freqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := range freqs {
		if c.CodeLen(s) != 3 {
			t.Errorf("uniform code length for %d = %d, want 3", s, c.CodeLen(s))
		}
	}
}

// TestQuickRoundTrip: random frequency tables and random messages
// drawn from present symbols always round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		freqs := make([]int64, n)
		var present []int
		for s := range freqs {
			if rng.Intn(3) > 0 {
				freqs[s] = int64(rng.Intn(1000) + 1)
				present = append(present, s)
			}
		}
		if len(present) == 0 {
			freqs[0] = 1
			present = append(present, 0)
		}
		c, err := Build(freqs, 15)
		if err != nil {
			return false
		}
		msg := make([]int, rng.Intn(500))
		for i := range msg {
			msg[i] = present[rng.Intn(len(present))]
		}
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		for _, s := range msg {
			if err := c.Encode(bw, s); err != nil {
				return false
			}
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		br := bitio.NewReader(&buf)
		for _, want := range msg {
			s, err := c.Decode(br)
			if err != nil || s != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLengthTableTransport: decoder rebuilt from serialized lengths
// always matches the encoder.
func TestQuickLengthTableTransport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 2
		freqs := make([]int64, n)
		for s := range freqs {
			freqs[s] = int64(rng.Intn(50))
		}
		freqs[0]++ // ensure at least one symbol
		c, err := Build(freqs, 0)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		if err := c.WriteLengths(bw); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		c2, err := ReadLengths(bitio.NewReader(&buf))
		if err != nil {
			return false
		}
		for s := range c.Lengths {
			if c.Lengths[s] != c2.Lengths[s] || c.codes[s] != c2.codes[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	b.ReportAllocs()
	freqs := make([]int64, 256)
	rng := rand.New(rand.NewSource(1))
	for s := range freqs {
		freqs[s] = int64(rng.Intn(1000) + 1)
	}
	c, err := Build(freqs, 15)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]int, 64*1024)
	for i := range msg {
		msg[i] = rng.Intn(256)
	}
	b.ResetTimer()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		for _, s := range msg {
			if err := c.Encode(bw, s); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	b.ReportAllocs()
	freqs := make([]int64, 256)
	rng := rand.New(rand.NewSource(1))
	for s := range freqs {
		freqs[s] = int64(rng.Intn(1000) + 1)
	}
	c, err := Build(freqs, 15)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]int, 64*1024)
	for i := range msg {
		msg[i] = rng.Intn(256)
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	for _, s := range msg {
		if err := c.Encode(bw, s); err != nil {
			b.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		br := bitio.NewReader(bytes.NewReader(data))
		for range msg {
			if _, err := c.Decode(br); err != nil {
				b.Fatal(err)
			}
		}
	}
}
