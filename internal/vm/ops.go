// Package vm implements the OmniVM-like register virtual machine the
// BRISC experiments run on: a RISC instruction set with 16 integer
// registers (two of which serve as sp and ra, following the paper's
// examples "enter sp,sp,24" and "spill.i ra,20(sp)"), macro
// instructions for function entry/exit, an assembler/disassembler, and
// an interpreter over a flat little-endian memory.
package vm

import "fmt"

// Register indices. r0..r11 are general; r0..r3 also carry the first
// four arguments and r0 the return value. R12 is the code generator's
// reserved scratch register; r13 is unassigned.
const (
	RegArg0 = 0
	RegTmp  = 12 // codegen scratch, never allocated to expressions
	RegSP   = 14
	RegRA   = 15
	NumRegs = 16
)

// RegName renders a register the way the paper writes them.
func RegName(r uint8) string {
	switch r {
	case RegSP:
		return "sp"
	case RegRA:
		return "ra"
	default:
		return fmt.Sprintf("n%d", r)
	}
}

// Opcode identifies a VM instruction.
type Opcode uint8

// Instruction set. LDI is the load-immediate primitive the de-tuned
// abstract machines keep; ADDI and the B..I compare-immediate branches
// are the "ad hoc" immediate forms the design-space study removes; LDW/
// LDB/STW/STB carry register-displacement addressing, the other feature
// that study removes.
const (
	BAD Opcode = iota

	// Memory: register-displacement addressing.
	LDW // rd <- mem32[rs1+imm]
	LDB // rd <- sign-extend mem8[rs1+imm]
	STW // mem32[rs1+imm] <- rs2
	STB // mem8[rs1+imm] <- low8(rs2)

	// Immediates.
	LDI  // rd <- imm (the primitive every variant keeps)
	ADDI // rd <- rs1 + imm

	// Register-register ALU.
	MOV
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SHL
	SHR // arithmetic shift right
	NEG
	NOT

	// Compare-and-branch, register-register.
	BEQ
	BNE
	BLT
	BLE
	BGT
	BGE

	// Compare-and-branch, register-immediate ("ble.i n4,0,$L56").
	BEQI
	BNEI
	BLTI
	BLEI
	BGTI
	BGEI

	// Control.
	JMP  // pc <- imm
	CALL // ra <- pc+1; pc <- imm (resolved function entry)
	RJR  // pc <- rs1 ("rjr ra")

	// Macro-instructions.
	ENTER // sp -= imm (function prologue frame allocation)
	EXIT  // sp += imm
	EPI   // ra <- mem32[sp+imm-4]; sp += imm; pc <- ra (paper's epi)

	// Runtime traps (builtins); imm selects the call, args in r0.
	TRAP

	// HALT stops the machine (end of program).
	HALT

	numOpcodes
)

// NumOpcodes is the size of the base opcode space.
const NumOpcodes = int(numOpcodes)

// FieldKind describes one operand field of an instruction pattern; the
// BRISC compressor specializes and packs fields by kind.
type FieldKind uint8

// Operand field kinds.
const (
	FReg FieldKind = iota // 4-bit register number
	FImm                  // immediate (displacement, constant, frame size)
	FTgt                  // code target (branch/jump/call); not specialized
)

type opcodeInfo struct {
	name   string
	fields []FieldKind
	// fieldNames, for disassembly ordering: fields appear in the order
	// rd, rs1, rs2, imm as applicable; the assembler syntax knows how to
	// print each opcode.
}

var opcodeTable = [numOpcodes]opcodeInfo{
	BAD:   {"bad", nil},
	LDW:   {"ld.iw", []FieldKind{FReg, FImm, FReg}}, // ld.iw rd, imm(rs1)
	LDB:   {"ld.ib", []FieldKind{FReg, FImm, FReg}},
	STW:   {"st.iw", []FieldKind{FReg, FImm, FReg}}, // st.iw rs2, imm(rs1)
	STB:   {"st.ib", []FieldKind{FReg, FImm, FReg}},
	LDI:   {"ldi", []FieldKind{FReg, FImm}},
	ADDI:  {"addi.i", []FieldKind{FReg, FReg, FImm}},
	MOV:   {"mov.i", []FieldKind{FReg, FReg}},
	ADD:   {"add.i", []FieldKind{FReg, FReg, FReg}},
	SUB:   {"sub.i", []FieldKind{FReg, FReg, FReg}},
	MUL:   {"mul.i", []FieldKind{FReg, FReg, FReg}},
	DIV:   {"div.i", []FieldKind{FReg, FReg, FReg}},
	REM:   {"rem.i", []FieldKind{FReg, FReg, FReg}},
	AND:   {"and.i", []FieldKind{FReg, FReg, FReg}},
	OR:    {"or.i", []FieldKind{FReg, FReg, FReg}},
	XOR:   {"xor.i", []FieldKind{FReg, FReg, FReg}},
	SHL:   {"shl.i", []FieldKind{FReg, FReg, FReg}},
	SHR:   {"shr.i", []FieldKind{FReg, FReg, FReg}},
	NEG:   {"neg.i", []FieldKind{FReg, FReg}},
	NOT:   {"not.i", []FieldKind{FReg, FReg}},
	BEQ:   {"beq.i", []FieldKind{FReg, FReg, FTgt}},
	BNE:   {"bne.i", []FieldKind{FReg, FReg, FTgt}},
	BLT:   {"blt.i", []FieldKind{FReg, FReg, FTgt}},
	BLE:   {"ble.i", []FieldKind{FReg, FReg, FTgt}},
	BGT:   {"bgt.i", []FieldKind{FReg, FReg, FTgt}},
	BGE:   {"bge.i", []FieldKind{FReg, FReg, FTgt}},
	BEQI:  {"beqi.i", []FieldKind{FReg, FImm, FTgt}},
	BNEI:  {"bnei.i", []FieldKind{FReg, FImm, FTgt}},
	BLTI:  {"blti.i", []FieldKind{FReg, FImm, FTgt}},
	BLEI:  {"blei.i", []FieldKind{FReg, FImm, FTgt}},
	BGTI:  {"bgti.i", []FieldKind{FReg, FImm, FTgt}},
	BGEI:  {"bgei.i", []FieldKind{FReg, FImm, FTgt}},
	JMP:   {"jmp", []FieldKind{FTgt}},
	CALL:  {"call", []FieldKind{FTgt}},
	RJR:   {"rjr", []FieldKind{FReg}},
	ENTER: {"enter", []FieldKind{FImm}},
	EXIT:  {"exit", []FieldKind{FImm}},
	EPI:   {"epi", []FieldKind{FImm}},
	TRAP:  {"trap", []FieldKind{FImm}},
	HALT:  {"halt", nil},
}

// Name returns the assembler mnemonic.
func (op Opcode) Name() string {
	if op >= numOpcodes {
		return fmt.Sprintf("op%d", uint8(op))
	}
	return opcodeTable[op].name
}

// Valid reports whether op is defined.
func (op Opcode) Valid() bool { return op > BAD && op < numOpcodes }

// Fields returns the operand field kinds in operand order.
func (op Opcode) Fields() []FieldKind {
	if op >= numOpcodes {
		return nil
	}
	return opcodeTable[op].fields
}

// IsBranch reports compare-and-branch opcodes (both forms).
func (op Opcode) IsBranch() bool { return op >= BEQ && op <= BGEI }

// IsImmBranch reports compare-immediate branches.
func (op Opcode) IsImmBranch() bool { return op >= BEQI && op <= BGEI }

// EndsBlock reports whether the instruction terminates a basic block.
func (op Opcode) EndsBlock() bool {
	return op.IsBranch() || op == JMP || op == CALL || op == RJR || op == EPI || op == HALT
}

// Trap identifiers for TRAP's immediate.
const (
	TrapPutint = iota
	TrapPutchar
	TrapPuts
	TrapExit
	NumTraps
)

// TrapName renders a trap id.
func TrapName(id int32) string {
	switch id {
	case TrapPutint:
		return "putint"
	case TrapPutchar:
		return "putchar"
	case TrapPuts:
		return "puts"
	case TrapExit:
		return "exit"
	}
	return fmt.Sprintf("trap%d", id)
}

// TrapByName resolves a builtin name to a trap id; ok is false for
// unknown names.
func TrapByName(name string) (int32, bool) {
	switch name {
	case "putint":
		return TrapPutint, true
	case "putchar":
		return TrapPutchar, true
	case "puts":
		return TrapPuts, true
	case "exit":
		return TrapExit, true
	}
	return 0, false
}
