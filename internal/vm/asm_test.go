package vm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

const asmHello = `
; start stub
	call main
	trap exit
	halt

.data greeting "hi!"

.func main frame=8
	enter sp,sp,8
	st.iw ra,4(sp)
	ldi n0,16        ; &greeting (first global lands at 16)
	trap puts
	ldi n4,6
	ldi n5,7
	mul.i n4,n4,n5
	mov.i n0,n4
	trap putint
	ldi n0,0
	ld.iw ra,4(sp)
	exit sp,sp,8
	rjr ra
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble(asmHello)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m := NewMachine(p, 1<<16, &out)
	code, err := m.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
	if out.String() != "hi!\n42\n" {
		t.Errorf("output = %q", out.String())
	}
	if p.Func("main") == nil || p.Func("main").Frame != 8 {
		t.Errorf("function table wrong: %+v", p.Funcs)
	}
}

func TestAssembleBranchesAndLoops(t *testing.T) {
	src := `
	ldi n4,0
	ldi n5,1
loop:
	add.i n4,n4,n5
	addi.i n5,n5,1
	blei.i n5,10,loop
	mov.i n0,n4
	trap exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1<<16, nil)
	code, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if code != 55 {
		t.Errorf("sum = %d, want 55", code)
	}
}

func TestAssembleEveryBranchForm(t *testing.T) {
	src := `
	ldi n1,5
	ldi n2,6
	beq.i n1,n2,bad
	bne.i n1,n2,ok1
	jmp bad
ok1:
	blt.i n1,n2,ok2
	jmp bad
ok2:
	ble.i n1,n2,ok3
	jmp bad
ok3:
	bgt.i n2,n1,ok4
	jmp bad
ok4:
	bge.i n2,n1,ok5
	jmp bad
ok5:
	beqi.i n1,5,ok6
	jmp bad
ok6:
	bnei.i n1,9,ok7
	jmp bad
ok7:
	blti.i n1,6,ok8
	jmp bad
ok8:
	bgti.i n1,4,ok9
	jmp bad
ok9:
	bgei.i n1,5,good
	jmp bad
bad:
	ldi n0,1
	trap exit
good:
	ldi n0,0
	trap exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1<<16, nil)
	code, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Error("branch semantics test took the wrong path")
	}
}

func TestAssembleGlobals(t *testing.T) {
	src := `
	ld.iw n4,0(n13)   ; n13 is conventionally zero; 0(gz) reads page 0
	halt
.global counter 8
.data msg "x"
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Globals) != 2 {
		t.Fatalf("globals = %+v", p.Globals)
	}
	if p.Globals[0].Name != "counter" || p.Globals[0].Addr != 16 {
		t.Errorf("counter placement: %+v", p.Globals[0])
	}
	if p.Globals[1].Addr != 24 || string(p.Globals[1].Init) != "x\x00" {
		t.Errorf("msg placement: %+v", p.Globals[1])
	}
}

// TestAssembleDisassembleRoundTrip: disassembling an assembled program
// and reassembling yields identical code.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble(asmHello)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild source from the disassembly (add labels for targets).
	var sb strings.Builder
	targets := map[int32]bool{}
	for _, ins := range p.Code {
		if ins.Op.IsBranch() || ins.Op == JMP || ins.Op == CALL {
			targets[ins.Target] = true
		}
	}
	for i, ins := range p.Code {
		if targets[int32(i)] {
			fmt.Fprintf(&sb, "L%d:\n", i)
		}
		text := ins.String()
		// Rewrite $Ln target syntax to label references.
		if idx := strings.Index(text, "$L"); idx >= 0 {
			text = text[:idx] + "L" + text[idx+2:]
		}
		sb.WriteString("\t" + text + "\n")
	}
	p2, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("reassemble: %v\nsource:\n%s", err, sb.String())
	}
	if len(p2.Code) != len(p.Code) {
		t.Fatalf("code length %d != %d", len(p2.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Errorf("instr %d: %+v != %+v", i, p.Code[i], p2.Code[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus n1,n2",
		"ldi n99,1",
		"ldi n1",
		"ld.iw n1,nope",
		"jmp",
		"trap nope",
		"beq.i n1,n2,missing",
		"dup:\ndup:\nhalt",
		".func",
		".global x",
		".global x notanumber",
		".data x noquote",
		"halt extra",
		"add.i n1,n2",
		"enter sp,sp",
		"rjr 42",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble("; nothing\n# also nothing\n\thalt ; trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 1 || p.Code[0].Op != HALT {
		t.Errorf("code = %+v", p.Code)
	}
}
