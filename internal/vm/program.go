package vm

import (
	"fmt"
	"strings"
)

// Instr is one decoded VM instruction. Operand meaning by opcode:
//
//	LDW/LDB   rd <- mem[Rs1+Imm]
//	STW/STB   mem[Rs1+Imm] <- Rs2
//	LDI       Rd <- Imm
//	ADDI      Rd <- Rs1 + Imm
//	MOV/NEG/NOT  Rd <- op(Rs1)
//	ALU       Rd <- Rs1 op Rs2
//	B..       compare Rs1 with Rs2 (or Imm), branch to Target
//	JMP/CALL  Target
//	RJR       pc <- Rs1
//	ENTER/EXIT/EPI/TRAP  Imm
//
// Target holds a code address (instruction index into the linked
// program). Branch targets are absolute after linking.
type Instr struct {
	Op     Opcode
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Imm    int32
	Target int32
}

// FuncInfo records one function's location in the linked program.
type FuncInfo struct {
	Name  string
	Entry int // index of first instruction
	End   int // index one past the last instruction
	Frame int // total frame bytes (locals+temps+outgoing+ra)
}

// Program is a linked VM executable.
type Program struct {
	Name    string
	Code    []Instr
	Funcs   []FuncInfo
	Globals []GlobalData
	// DataSize is the total byte size of the global data segment.
	DataSize int
	// BlockStarts marks instruction indices that begin basic blocks
	// (function entries and branch targets); BRISC keeps these
	// addressable.
	BlockStarts []int
}

// GlobalData is one global's placement in the data segment.
type GlobalData struct {
	Name string
	Addr int32
	Size int
	Init []byte
}

// Func looks up a function by name.
func (p *Program) Func(name string) *FuncInfo {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i]
		}
	}
	return nil
}

// FuncAt returns the function containing instruction index pc.
func (p *Program) FuncAt(pc int) *FuncInfo {
	for i := range p.Funcs {
		if pc >= p.Funcs[i].Entry && pc < p.Funcs[i].End {
			return &p.Funcs[i]
		}
	}
	return nil
}

// Global looks up a global by name.
func (p *Program) Global(name string) *GlobalData {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return &p.Globals[i]
		}
	}
	return nil
}

// ComputeBlockStarts fills BlockStarts from the code: function entries,
// branch/jump targets, and instructions following block enders.
func (p *Program) ComputeBlockStarts() {
	mark := make(map[int]bool)
	for _, f := range p.Funcs {
		mark[f.Entry] = true
	}
	for i, ins := range p.Code {
		switch {
		case ins.Op.IsBranch() || ins.Op == JMP:
			mark[int(ins.Target)] = true
			mark[i+1] = true
		case ins.Op == CALL:
			mark[i+1] = true
		case ins.Op == RJR || ins.Op == EPI || ins.Op == HALT:
			if i+1 < len(p.Code) {
				mark[i+1] = true
			}
		}
	}
	p.BlockStarts = p.BlockStarts[:0]
	for i := range p.Code {
		if mark[i] {
			p.BlockStarts = append(p.BlockStarts, i)
		}
	}
}

// String disassembles one instruction using paper-style syntax.
func (ins Instr) String() string {
	switch ins.Op {
	case LDW, LDB:
		return fmt.Sprintf("%s %s,%d(%s)", ins.Op.Name(), RegName(ins.Rd), ins.Imm, RegName(ins.Rs1))
	case STW, STB:
		return fmt.Sprintf("%s %s,%d(%s)", ins.Op.Name(), RegName(ins.Rs2), ins.Imm, RegName(ins.Rs1))
	case LDI:
		return fmt.Sprintf("%s %s,%d", ins.Op.Name(), RegName(ins.Rd), ins.Imm)
	case ADDI:
		return fmt.Sprintf("%s %s,%s,%d", ins.Op.Name(), RegName(ins.Rd), RegName(ins.Rs1), ins.Imm)
	case MOV, NEG, NOT:
		return fmt.Sprintf("%s %s,%s", ins.Op.Name(), RegName(ins.Rd), RegName(ins.Rs1))
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR:
		return fmt.Sprintf("%s %s,%s,%s", ins.Op.Name(), RegName(ins.Rd), RegName(ins.Rs1), RegName(ins.Rs2))
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		return fmt.Sprintf("%s %s,%s,$L%d", ins.Op.Name(), RegName(ins.Rs1), RegName(ins.Rs2), ins.Target)
	case BEQI, BNEI, BLTI, BLEI, BGTI, BGEI:
		return fmt.Sprintf("%s %s,%d,$L%d", ins.Op.Name(), RegName(ins.Rs1), ins.Imm, ins.Target)
	case JMP:
		return fmt.Sprintf("%s $L%d", ins.Op.Name(), ins.Target)
	case CALL:
		return fmt.Sprintf("%s $L%d", ins.Op.Name(), ins.Target)
	case RJR:
		return fmt.Sprintf("%s %s", ins.Op.Name(), RegName(ins.Rs1))
	case ENTER, EXIT, EPI:
		return fmt.Sprintf("%s sp,sp,%d", ins.Op.Name(), ins.Imm)
	case TRAP:
		return fmt.Sprintf("%s %s", ins.Op.Name(), TrapName(ins.Imm))
	case HALT:
		return ins.Op.Name()
	default:
		return fmt.Sprintf("%s ?", ins.Op.Name())
	}
}

// Disassemble renders the whole program with function headers and
// block-start markers.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	blocks := map[int]bool{}
	for _, b := range p.BlockStarts {
		blocks[b] = true
	}
	for i, ins := range p.Code {
		for _, f := range p.Funcs {
			if f.Entry == i {
				fmt.Fprintf(&sb, "%s:\n", f.Name)
			}
		}
		marker := "  "
		if blocks[i] {
			marker = "> "
		}
		fmt.Fprintf(&sb, "%s%4d: %s\n", marker, i, ins)
	}
	return sb.String()
}

// NumInstrs reports the instruction count.
func (p *Program) NumInstrs() int { return len(p.Code) }
