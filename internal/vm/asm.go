package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual OmniVM assembly this package's
// disassembler emits (plus labels and a few directives) into a linked
// Program. It exists so tests and tools can write machine programs
// directly, and so `mcc -dump-asm` output is a real interchange format.
//
// Syntax, one item per line (';' or '#' start comments):
//
//	.func name frame=N     begin function "name" with frame size N
//	.global name size      reserve a zeroed global
//	.data name "bytes"     a global initialized from a Go-quoted string
//	label:                 define a code label
//	ld.iw n0,4(sp)         instructions, exactly as disassembled
//	ble.i n1,n2,target     branch/jump/call targets are label or
//	call name              function names
//	trap putint            traps by name
//
// Programs execute from the first instruction, as with the code
// generator's start stub.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		prog:   &Program{},
		labels: map[string]int32{},
	}
	addr := int32(16) // skip the null page, like the code generator
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("vm: line %d: %w", lineNo+1, err)
		}
	}
	a.endFunc()
	// Lay out globals.
	for i := range a.prog.Globals {
		g := &a.prog.Globals[i]
		addr = (addr + 3) &^ 3
		g.Addr = addr
		a.labels["&"+g.Name] = addr
		addr += int32(g.Size)
	}
	a.prog.DataSize = int(addr)
	// Resolve fixups.
	for _, fx := range a.fixups {
		pos, ok := a.labels[fx.name]
		if !ok {
			return nil, fmt.Errorf("vm: undefined label %q", fx.name)
		}
		a.prog.Code[fx.at].Target = pos
	}
	a.prog.ComputeBlockStarts()
	return a.prog, nil
}

type asmFixup struct {
	at   int
	name string
}

type assembler struct {
	prog    *Program
	labels  map[string]int32
	fixups  []asmFixup
	curFunc *FuncInfo
}

func stripComment(s string) string {
	for _, sep := range []string{";", "#"} {
		if i := strings.Index(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func (a *assembler) endFunc() {
	if a.curFunc != nil {
		a.curFunc.End = len(a.prog.Code)
		a.prog.Funcs = append(a.prog.Funcs, *a.curFunc)
		a.curFunc = nil
	}
}

func (a *assembler) line(line string) error {
	switch {
	case strings.HasPrefix(line, ".func "):
		a.endFunc()
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf(".func needs a name")
		}
		name := fields[1]
		frame := 0
		for _, f := range fields[2:] {
			if v, ok := strings.CutPrefix(f, "frame="); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("bad frame size %q", v)
				}
				frame = n
			}
		}
		if _, dup := a.labels[name]; dup {
			return fmt.Errorf("duplicate symbol %q", name)
		}
		a.labels[name] = int32(len(a.prog.Code))
		a.curFunc = &FuncInfo{Name: name, Entry: len(a.prog.Code), Frame: frame}
		return nil
	case strings.HasPrefix(line, ".global "):
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf(".global needs name and size")
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil || size <= 0 {
			return fmt.Errorf("bad global size %q", fields[2])
		}
		a.prog.Globals = append(a.prog.Globals, GlobalData{Name: fields[1], Size: size})
		return nil
	case strings.HasPrefix(line, ".data "):
		rest := strings.TrimPrefix(line, ".data ")
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return fmt.Errorf(".data needs name and a quoted string")
		}
		name := rest[:sp]
		lit := strings.TrimSpace(rest[sp+1:])
		s, err := strconv.Unquote(lit)
		if err != nil {
			return fmt.Errorf("bad string literal %s: %v", lit, err)
		}
		a.prog.Globals = append(a.prog.Globals, GlobalData{
			Name: name, Size: len(s) + 1, Init: append([]byte(s), 0),
		})
		return nil
	case strings.HasSuffix(line, ":"):
		name := strings.TrimSuffix(line, ":")
		if !validLabel(name) {
			return fmt.Errorf("bad label %q", name)
		}
		if _, dup := a.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.labels[name] = int32(len(a.prog.Code))
		return nil
	default:
		return a.instr(line)
	}
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '$' || c == '.'
		if !ok {
			return false
		}
	}
	return true
}

// opcodeByName maps mnemonics back to opcodes.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(1); op < numOpcodes; op++ {
		m[op.Name()] = op
	}
	return m
}()

func (a *assembler) instr(line string) error {
	mn, rest, _ := strings.Cut(line, " ")
	op, ok := opcodeByName[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	args := splitArgs(rest)
	ins := Instr{Op: op}
	var err error
	switch op {
	case LDW, LDB, STW, STB:
		// data, imm(base)
		if len(args) != 2 {
			return fmt.Errorf("%s needs 2 operands", mn)
		}
		data, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		ins.Rs1, ins.Imm = base, imm
		if op == LDW || op == LDB {
			ins.Rd = data
		} else {
			ins.Rs2 = data
		}
	case LDI:
		if len(args) != 2 {
			return fmt.Errorf("ldi needs 2 operands")
		}
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if ins.Imm, err = parseImm(args[1]); err != nil {
			return err
		}
	case ADDI:
		if len(args) != 3 {
			return fmt.Errorf("addi.i needs 3 operands")
		}
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if ins.Rs1, err = parseReg(args[1]); err != nil {
			return err
		}
		if ins.Imm, err = parseImm(args[2]); err != nil {
			return err
		}
	case MOV, NEG, NOT:
		if len(args) != 2 {
			return fmt.Errorf("%s needs 2 operands", mn)
		}
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if ins.Rs1, err = parseReg(args[1]); err != nil {
			return err
		}
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR:
		if len(args) != 3 {
			return fmt.Errorf("%s needs 3 operands", mn)
		}
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if ins.Rs1, err = parseReg(args[1]); err != nil {
			return err
		}
		if ins.Rs2, err = parseReg(args[2]); err != nil {
			return err
		}
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		if len(args) != 3 {
			return fmt.Errorf("%s needs 3 operands", mn)
		}
		if ins.Rs1, err = parseReg(args[0]); err != nil {
			return err
		}
		if ins.Rs2, err = parseReg(args[1]); err != nil {
			return err
		}
		a.target(&ins, args[2])
	case BEQI, BNEI, BLTI, BLEI, BGTI, BGEI:
		if len(args) != 3 {
			return fmt.Errorf("%s needs 3 operands", mn)
		}
		if ins.Rs1, err = parseReg(args[0]); err != nil {
			return err
		}
		if ins.Imm, err = parseImm(args[1]); err != nil {
			return err
		}
		a.target(&ins, args[2])
	case JMP, CALL:
		if len(args) != 1 {
			return fmt.Errorf("%s needs 1 operand", mn)
		}
		a.target(&ins, args[0])
	case RJR:
		if len(args) != 1 {
			return fmt.Errorf("rjr needs 1 operand")
		}
		if ins.Rs1, err = parseReg(args[0]); err != nil {
			return err
		}
	case ENTER, EXIT, EPI:
		// Accept both "enter sp,sp,24" and "enter 24".
		switch len(args) {
		case 1:
			if ins.Imm, err = parseImm(args[0]); err != nil {
				return err
			}
		case 3:
			if ins.Imm, err = parseImm(args[2]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%s needs a frame size", mn)
		}
	case TRAP:
		if len(args) != 1 {
			return fmt.Errorf("trap needs 1 operand")
		}
		id, ok := TrapByName(args[0])
		if !ok {
			return fmt.Errorf("unknown trap %q", args[0])
		}
		ins.Imm = id
	case HALT:
		if len(args) != 0 {
			return fmt.Errorf("halt takes no operands")
		}
	default:
		return fmt.Errorf("unsupported mnemonic %q", mn)
	}
	a.prog.Code = append(a.prog.Code, ins)
	return nil
}

// target records a label reference for the just-built instruction.
func (a *assembler) target(ins *Instr, arg string) {
	name := strings.TrimPrefix(arg, "$")
	a.fixups = append(a.fixups, asmFixup{at: len(a.prog.Code), name: name})
	_ = ins
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (uint8, error) {
	switch s {
	case "sp":
		return RegSP, nil
	case "ra":
		return RegRA, nil
	}
	if strings.HasPrefix(s, "n") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// parseMem parses "imm(reg)" or "(reg)".
func parseMem(s string) (int32, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var imm int32
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}
