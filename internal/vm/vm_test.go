package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// handProgram assembles a tiny program by hand: compute 6*7, print it,
// exit 0.
func handProgram() *Program {
	p := &Program{
		Name: "hand",
		Code: []Instr{
			{Op: LDI, Rd: 4, Imm: 6},
			{Op: LDI, Rd: 5, Imm: 7},
			{Op: MUL, Rd: 4, Rs1: 4, Rs2: 5},
			{Op: MOV, Rd: RegArg0, Rs1: 4},
			{Op: TRAP, Imm: TrapPutint},
			{Op: LDI, Rd: RegArg0, Imm: 0},
			{Op: HALT},
		},
	}
	p.ComputeBlockStarts()
	return p
}

func TestInterpBasic(t *testing.T) {
	var out bytes.Buffer
	m := NewMachine(handProgram(), 1<<16, &out)
	code, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	if out.String() != "42\n" {
		t.Errorf("output = %q", out.String())
	}
	if m.Steps != 7 {
		t.Errorf("steps = %d, want 7", m.Steps)
	}
}

func TestInterpBranchesAndLoop(t *testing.T) {
	// sum 1..10 with a BLEI loop.
	p := &Program{Code: []Instr{
		{Op: LDI, Rd: 4, Imm: 0},         // sum
		{Op: LDI, Rd: 5, Imm: 1},         // i
		{Op: ADD, Rd: 4, Rs1: 4, Rs2: 5}, // 2: loop
		{Op: ADDI, Rd: 5, Rs1: 5, Imm: 1},
		{Op: BLEI, Rs1: 5, Imm: 10, Target: 2},
		{Op: MOV, Rd: RegArg0, Rs1: 4},
		{Op: TRAP, Imm: TrapExit},
	}}
	m := NewMachine(p, 1<<16, nil)
	code, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 55 {
		t.Errorf("exit = %d, want 55", code)
	}
}

func TestInterpCallReturn(t *testing.T) {
	// main: call f; exit(r0). f: r0 = 99; rjr ra.
	p := &Program{Code: []Instr{
		{Op: CALL, Target: 3},
		{Op: TRAP, Imm: TrapExit},
		{Op: HALT},
		{Op: LDI, Rd: RegArg0, Imm: 99}, // 3: f
		{Op: RJR, Rs1: RegRA},
	}}
	m := NewMachine(p, 1<<16, nil)
	code, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 99 {
		t.Errorf("exit = %d, want 99", code)
	}
}

func TestInterpEnterExitEpi(t *testing.T) {
	// Frame push/pop with ra spill and EPI return.
	p := &Program{Code: []Instr{
		{Op: CALL, Target: 3},
		{Op: TRAP, Imm: TrapExit},
		{Op: HALT},
		// f: enter 16; save ra at 12(sp); r0=7; epi 16
		{Op: ENTER, Imm: 16},
		{Op: STW, Rs1: RegSP, Rs2: RegRA, Imm: 12},
		{Op: LDI, Rd: RegArg0, Imm: 7},
		{Op: EPI, Imm: 16},
	}}
	m := NewMachine(p, 1<<16, nil)
	code, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
	if m.Regs[RegSP] != int32(1<<16) {
		t.Errorf("sp not restored: %d", m.Regs[RegSP])
	}
}

func TestInterpMemoryAndGlobals(t *testing.T) {
	p := &Program{
		Globals: []GlobalData{{Name: "msg", Addr: 16, Size: 6, Init: []byte("hey\x00")}},
		Code: []Instr{
			{Op: LDI, Rd: RegArg0, Imm: 16},
			{Op: TRAP, Imm: TrapPuts},
			{Op: LDB, Rd: 4, Rs1: 13, Imm: 16}, // 'h'
			{Op: MOV, Rd: RegArg0, Rs1: 4},
			{Op: TRAP, Imm: TrapExit},
		},
	}
	var out bytes.Buffer
	m := NewMachine(p, 1<<16, &out)
	code, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "hey\n" {
		t.Errorf("output = %q", out.String())
	}
	if code != 'h' {
		t.Errorf("exit = %d, want %d", code, 'h')
	}
}

func TestInterpSignedByteLoad(t *testing.T) {
	p := &Program{
		Globals: []GlobalData{{Name: "b", Addr: 16, Size: 1, Init: []byte{0xFF}}},
		Code: []Instr{
			{Op: LDB, Rd: RegArg0, Rs1: 13, Imm: 16},
			{Op: TRAP, Imm: TrapExit},
		},
	}
	m := NewMachine(p, 1<<16, nil)
	code, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != -1 {
		t.Errorf("sign extension: exit = %d, want -1", code)
	}
}

func TestInterpFaults(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
		want error
	}{
		{"div0", []Instr{{Op: LDI, Rd: 4, Imm: 1}, {Op: DIV, Rd: 4, Rs1: 4, Rs2: 5}}, ErrDivByZero},
		{"rem0", []Instr{{Op: REM, Rd: 4, Rs1: 4, Rs2: 5}}, ErrDivByZero},
		{"oob-load", []Instr{{Op: LDI, Rd: 4, Imm: -8}, {Op: LDW, Rd: 4, Rs1: 4}}, ErrMemFault},
		{"oob-store", []Instr{{Op: LDI, Rd: 4, Imm: 1 << 30}, {Op: STW, Rs1: 4, Rs2: 4}}, ErrMemFault},
		{"run-off-end", []Instr{{Op: LDI, Rd: 4, Imm: 0}}, ErrBadPC},
		{"bad-jump", []Instr{{Op: JMP, Target: -5}}, ErrBadPC},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewMachine(&Program{Code: c.code}, 1<<16, nil)
			_, err := m.Run(100)
			if !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestInterpStepLimit(t *testing.T) {
	p := &Program{Code: []Instr{{Op: JMP, Target: 0}}}
	m := NewMachine(p, 1<<16, nil)
	_, err := m.Run(50)
	if !errors.Is(err, ErrOutOfSteps) {
		t.Errorf("err = %v, want ErrOutOfSteps", err)
	}
}

func TestInterpTrace(t *testing.T) {
	var pcs []int32
	m := NewMachine(handProgram(), 1<<16, nil)
	m.Trace = func(pc int32) { pcs = append(pcs, pc) }
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 7 || pcs[0] != 0 || pcs[6] != 6 {
		t.Errorf("trace = %v", pcs)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: LDW, Rd: 0, Rs1: RegSP, Imm: 4}, "ld.iw n0,4(sp)"},
		{Instr{Op: STW, Rs1: RegSP, Rs2: RegRA, Imm: 20}, "st.iw ra,20(sp)"},
		{Instr{Op: MOV, Rd: 4, Rs1: 0}, "mov.i n4,n0"},
		{Instr{Op: BLEI, Rs1: 4, Imm: 0, Target: 56}, "blei.i n4,0,$L56"},
		{Instr{Op: ENTER, Imm: 24}, "enter sp,sp,24"},
		{Instr{Op: EPI, Imm: 24}, "epi sp,sp,24"},
		{Instr{Op: ADD, Rd: 0, Rs1: 4, Rs2: 5}, "add.i n0,n4,n5"},
		{Instr{Op: TRAP, Imm: TrapPuts}, "trap puts"},
		{Instr{Op: RJR, Rs1: RegRA}, "rjr ra"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestProgramHelpers(t *testing.T) {
	p := handProgram()
	p.Funcs = []FuncInfo{{Name: "main", Entry: 0, End: len(p.Code)}}
	if p.Func("main") == nil || p.Func("x") != nil {
		t.Error("Func lookup wrong")
	}
	if p.FuncAt(3) == nil || p.FuncAt(3).Name != "main" {
		t.Error("FuncAt wrong")
	}
	if p.FuncAt(100) != nil {
		t.Error("FuncAt out of range should be nil")
	}
	d := p.Disassemble()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "mul.i") {
		t.Errorf("disassembly:\n%s", d)
	}
}

func TestBlockStarts(t *testing.T) {
	p := &Program{Code: []Instr{
		{Op: LDI, Rd: 4, Imm: 0},
		{Op: BEQI, Rs1: 4, Imm: 0, Target: 3},
		{Op: LDI, Rd: 5, Imm: 1},
		{Op: HALT},
	}}
	p.Funcs = []FuncInfo{{Name: "main", Entry: 0, End: 4}}
	p.ComputeBlockStarts()
	want := map[int]bool{0: true, 2: true, 3: true}
	got := map[int]bool{}
	for _, b := range p.BlockStarts {
		got[b] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing block start %d: %v", k, p.BlockStarts)
		}
	}
}

func TestOpcodeMetadata(t *testing.T) {
	for op := Opcode(1); op < numOpcodes; op++ {
		if op.Name() == "" || op.Name() == "bad" {
			t.Errorf("op %d has no name", op)
		}
	}
	if !BLEI.IsBranch() || !BLEI.IsImmBranch() || BLE.IsImmBranch() {
		t.Error("branch classification wrong")
	}
	for _, op := range []Opcode{JMP, CALL, RJR, EPI, HALT, BEQ} {
		if !op.EndsBlock() {
			t.Errorf("%s should end a block", op.Name())
		}
	}
	if ADD.EndsBlock() {
		t.Error("add should not end a block")
	}
	if RegName(RegSP) != "sp" || RegName(RegRA) != "ra" || RegName(3) != "n3" {
		t.Error("RegName wrong")
	}
	for _, name := range []string{"putint", "putchar", "puts", "exit"} {
		id, ok := TrapByName(name)
		if !ok || TrapName(id) != name {
			t.Errorf("trap round trip failed for %s", name)
		}
	}
	if _, ok := TrapByName("nope"); ok {
		t.Error("unknown trap resolved")
	}
}
