package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/guard"
	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// Runtime errors.
var (
	ErrOutOfSteps = errors.New("vm: step limit exceeded")
	ErrMemFault   = errors.New("vm: memory fault")
	ErrDivByZero  = errors.New("vm: division by zero")
	ErrBadPC      = errors.New("vm: pc out of range")
	// ErrIllegal reports an illegal opcode or unknown trap — loaded code
	// that is structurally invalid, so it also matches
	// integrity.ErrCorrupt.
	ErrIllegal = integrity.Alias("vm: illegal instruction", integrity.ErrCorrupt)
)

// DefaultMemSize is the default machine memory, sized like the paper's
// test machine scaled down (the benchmarks never need more).
const DefaultMemSize = 4 << 20

// Machine executes a linked Program. Memory is little-endian; the data
// segment is copied in at Reset and the stack grows down from the top.
type Machine struct {
	Prog *Program
	Mem  []byte
	Regs [NumRegs]int32
	PC   int32
	Out  io.Writer

	Steps    int64
	ExitCode int32
	Halted   bool

	// Depth tracks nested activations (CALL increments, returns
	// decrement) for the governor's call-depth limit.
	Depth int

	// limits bounds every Run; install with SetLimits.
	limits guard.Limits

	// Trace, when non-nil, is invoked with the pc of every executed
	// instruction (used by the paging/working-set experiments).
	Trace func(pc int32)

	// Telemetry: dispatch counts accumulate in opCounts (hot loop pays
	// one nil check) and publish at the end of each Run.
	rec          *telemetry.Recorder
	opCounts     []int64
	flushedSteps int64
}

// NewMachine builds a machine with the given memory size (0 selects
// DefaultMemSize) writing trap output to out (nil discards it).
func NewMachine(p *Program, memSize int, out io.Writer) *Machine {
	if memSize <= 0 {
		memSize = DefaultMemSize
	}
	m := &Machine{Prog: p, Mem: make([]byte, memSize), Out: out}
	m.Reset()
	return m
}

// Reset reinitializes memory, registers, and the pc to program entry
// (instruction 0, the linker's start stub).
func (m *Machine) Reset() {
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	for _, g := range m.Prog.Globals {
		copy(m.Mem[g.Addr:], g.Init)
	}
	m.Regs = [NumRegs]int32{}
	m.Regs[RegSP] = int32(len(m.Mem))
	m.PC = 0
	m.Steps = 0
	m.ExitCode = 0
	m.Halted = false
	m.Depth = 0
	m.flushedSteps = 0
	for i := range m.opCounts {
		m.opCounts[i] = 0
	}
}

// SetRecorder attaches a telemetry recorder; when enabled, Run
// publishes total steps and per-opcode dispatch counts. A nil or
// disabled recorder detaches.
func (m *Machine) SetRecorder(rec *telemetry.Recorder) {
	if rec.Enabled() {
		m.rec = rec
		m.opCounts = make([]int64, NumOpcodes)
	} else {
		m.rec = nil
		m.opCounts = nil
	}
}

// FlushTelemetry publishes counters accumulated since the last flush.
// Run calls it on exit.
func (m *Machine) FlushTelemetry() {
	if m.rec == nil {
		return
	}
	m.rec.Add("vm.steps", m.Steps-m.flushedSteps)
	m.flushedSteps = m.Steps
	for op, n := range m.opCounts {
		if n != 0 {
			m.rec.Add("vm.dispatch."+Opcode(op).Name(), n)
			m.opCounts[op] = 0
		}
	}
}

func (m *Machine) load32(addr int32) (int32, error) {
	if addr < 0 || int(addr)+4 > len(m.Mem) {
		return 0, fmt.Errorf("%w: load32 at %d (pc %d)", ErrMemFault, addr, m.PC)
	}
	return int32(binary.LittleEndian.Uint32(m.Mem[addr:])), nil
}

func (m *Machine) store32(addr, v int32) error {
	if addr < 0 || int(addr)+4 > len(m.Mem) {
		return fmt.Errorf("%w: store32 at %d (pc %d)", ErrMemFault, addr, m.PC)
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], uint32(v))
	return nil
}

func (m *Machine) load8(addr int32) (int32, error) {
	if addr < 0 || int(addr) >= len(m.Mem) {
		return 0, fmt.Errorf("%w: load8 at %d (pc %d)", ErrMemFault, addr, m.PC)
	}
	return int32(int8(m.Mem[addr])), nil
}

func (m *Machine) store8(addr, v int32) error {
	if addr < 0 || int(addr) >= len(m.Mem) {
		return fmt.Errorf("%w: store8 at %d (pc %d)", ErrMemFault, addr, m.PC)
	}
	m.Mem[addr] = byte(v)
	return nil
}

// SetLimits installs resource limits honored by every subsequent Run.
// The memory limit is validated against the machine's memory
// immediately; a violation returns a *guard.TrapError.
func (m *Machine) SetLimits(l guard.Limits) error {
	g := guard.New("vm", l, ErrOutOfSteps)
	if err := g.CheckMem(len(m.Mem)); err != nil {
		return err
	}
	m.limits = l
	return nil
}

// Run executes until HALT, an exit trap, an error, or a resource limit
// (maxSteps, 0 = no limit, merges with any SetLimits step bound). A
// limit violation returns a *guard.TrapError, which still matches
// ErrOutOfSteps for the step limit. It returns the exit code.
func (m *Machine) Run(maxSteps int64) (int32, error) {
	defer m.FlushTelemetry()
	l := m.limits
	if maxSteps > 0 && (l.MaxSteps == 0 || maxSteps < l.MaxSteps) {
		l.MaxSteps = maxSteps
	}
	g := guard.New("vm", l, ErrOutOfSteps)
	for !m.Halted {
		if err := g.Check(m.Steps, m.Depth, int64(m.PC)); err != nil {
			m.recordTrap(err)
			return 0, err
		}
		if err := m.Step(); err != nil {
			return 0, err
		}
	}
	return m.ExitCode, nil
}

// recordTrap bumps the telemetry counter for a governor trap and
// trips the flight recorder (via guard.Report). The batched execution
// counters are flushed first so the flight dump shows what the run was
// doing when the limit fired.
func (m *Machine) recordTrap(err error) {
	m.FlushTelemetry()
	guard.Report(m.rec, err)
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.PC < 0 || int(m.PC) >= len(m.Prog.Code) {
		return fmt.Errorf("%w: %d", ErrBadPC, m.PC)
	}
	if m.Trace != nil {
		m.Trace(m.PC)
	}
	ins := m.Prog.Code[m.PC]
	if m.opCounts != nil && int(ins.Op) < len(m.opCounts) {
		m.opCounts[ins.Op]++
	}
	m.Steps++
	next := m.PC + 1
	r := &m.Regs
	switch ins.Op {
	case LDW:
		v, err := m.load32(r[ins.Rs1] + ins.Imm)
		if err != nil {
			return err
		}
		r[ins.Rd] = v
	case LDB:
		v, err := m.load8(r[ins.Rs1] + ins.Imm)
		if err != nil {
			return err
		}
		r[ins.Rd] = v
	case STW:
		if err := m.store32(r[ins.Rs1]+ins.Imm, r[ins.Rs2]); err != nil {
			return err
		}
	case STB:
		if err := m.store8(r[ins.Rs1]+ins.Imm, r[ins.Rs2]); err != nil {
			return err
		}
	case LDI:
		r[ins.Rd] = ins.Imm
	case ADDI:
		r[ins.Rd] = r[ins.Rs1] + ins.Imm
	case MOV:
		r[ins.Rd] = r[ins.Rs1]
	case ADD:
		r[ins.Rd] = r[ins.Rs1] + r[ins.Rs2]
	case SUB:
		r[ins.Rd] = r[ins.Rs1] - r[ins.Rs2]
	case MUL:
		r[ins.Rd] = r[ins.Rs1] * r[ins.Rs2]
	case DIV:
		if r[ins.Rs2] == 0 {
			return fmt.Errorf("%w (pc %d)", ErrDivByZero, m.PC)
		}
		r[ins.Rd] = r[ins.Rs1] / r[ins.Rs2]
	case REM:
		if r[ins.Rs2] == 0 {
			return fmt.Errorf("%w (pc %d)", ErrDivByZero, m.PC)
		}
		r[ins.Rd] = r[ins.Rs1] % r[ins.Rs2]
	case AND:
		r[ins.Rd] = r[ins.Rs1] & r[ins.Rs2]
	case OR:
		r[ins.Rd] = r[ins.Rs1] | r[ins.Rs2]
	case XOR:
		r[ins.Rd] = r[ins.Rs1] ^ r[ins.Rs2]
	case SHL:
		r[ins.Rd] = r[ins.Rs1] << (uint32(r[ins.Rs2]) & 31)
	case SHR:
		r[ins.Rd] = r[ins.Rs1] >> (uint32(r[ins.Rs2]) & 31)
	case NEG:
		r[ins.Rd] = -r[ins.Rs1]
	case NOT:
		r[ins.Rd] = ^r[ins.Rs1]
	case BEQ:
		if r[ins.Rs1] == r[ins.Rs2] {
			next = ins.Target
		}
	case BNE:
		if r[ins.Rs1] != r[ins.Rs2] {
			next = ins.Target
		}
	case BLT:
		if r[ins.Rs1] < r[ins.Rs2] {
			next = ins.Target
		}
	case BLE:
		if r[ins.Rs1] <= r[ins.Rs2] {
			next = ins.Target
		}
	case BGT:
		if r[ins.Rs1] > r[ins.Rs2] {
			next = ins.Target
		}
	case BGE:
		if r[ins.Rs1] >= r[ins.Rs2] {
			next = ins.Target
		}
	case BEQI:
		if r[ins.Rs1] == ins.Imm {
			next = ins.Target
		}
	case BNEI:
		if r[ins.Rs1] != ins.Imm {
			next = ins.Target
		}
	case BLTI:
		if r[ins.Rs1] < ins.Imm {
			next = ins.Target
		}
	case BLEI:
		if r[ins.Rs1] <= ins.Imm {
			next = ins.Target
		}
	case BGTI:
		if r[ins.Rs1] > ins.Imm {
			next = ins.Target
		}
	case BGEI:
		if r[ins.Rs1] >= ins.Imm {
			next = ins.Target
		}
	case JMP:
		next = ins.Target
	case CALL:
		r[RegRA] = next
		next = ins.Target
		m.Depth++
	case RJR:
		next = r[ins.Rs1]
		if m.Depth > 0 {
			m.Depth--
		}
	case ENTER:
		r[RegSP] -= ins.Imm
	case EXIT:
		r[RegSP] += ins.Imm
	case EPI:
		ra, err := m.load32(r[RegSP] + ins.Imm - 4)
		if err != nil {
			return err
		}
		r[RegSP] += ins.Imm
		r[RegRA] = ra
		next = ra
		if m.Depth > 0 {
			m.Depth--
		}
	case TRAP:
		if err := m.trap(ins.Imm); err != nil {
			return err
		}
	case HALT:
		m.Halted = true
		m.ExitCode = r[RegArg0]
	default:
		return fmt.Errorf("%w: illegal opcode %d at pc %d", ErrIllegal, ins.Op, m.PC)
	}
	m.PC = next
	return nil
}

func (m *Machine) trap(id int32) error {
	arg := m.Regs[RegArg0]
	switch id {
	case TrapPutint:
		m.print(fmt.Sprintf("%d\n", arg))
	case TrapPutchar:
		m.print(string(rune(byte(arg))))
	case TrapPuts:
		end := arg
		for int(end) < len(m.Mem) && m.Mem[end] != 0 {
			end++
		}
		if int(end) >= len(m.Mem) {
			return fmt.Errorf("%w: unterminated string at %d", ErrMemFault, arg)
		}
		m.print(string(m.Mem[arg:end]) + "\n")
	case TrapExit:
		m.Halted = true
		m.ExitCode = arg
	default:
		return fmt.Errorf("%w: unknown trap %d at pc %d", ErrIllegal, id, m.PC)
	}
	m.Regs[RegArg0] = 0
	return nil
}

func (m *Machine) print(s string) {
	if m.Out != nil {
		fmt.Fprint(m.Out, s)
	}
}
