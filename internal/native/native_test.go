package native

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/vm"
)

func compileProg(t testing.TB, src string) *vm.Program {
	t.Helper()
	mod, err := cc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(mod, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const sampleSrc = `
int a[64];
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) {
	int i;
	for (i = 0; i < 64; i++) a[i] = fib(i % 12) * 1000000 + i;
	putint(a[20]);
	return 0;
}`

func TestFixedRoundTrip(t *testing.T) {
	prog := compileProg(t, sampleSrc)
	enc := EncodeFixed(prog.Code)
	back, err := DecodeFixed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, prog.Code) {
		t.Fatal("fixed encoding round trip mismatch")
	}
	if got := FixedSize(prog.Code); got != len(enc) {
		t.Errorf("FixedSize = %d, actual %d", got, len(enc))
	}
	if len(enc) < 4*len(prog.Code) {
		t.Errorf("fixed encoding %d bytes < 4*%d instructions", len(enc), len(prog.Code))
	}
}

func TestVariableRoundTrip(t *testing.T) {
	prog := compileProg(t, sampleSrc)
	enc := EncodeVariable(prog.Code)
	back, err := DecodeVariable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, prog.Code) {
		t.Fatal("variable encoding round trip mismatch")
	}
	if got := VariableSize(prog.Code); got != len(enc) {
		t.Errorf("VariableSize = %d, actual %d", got, len(enc))
	}
}

func TestVariableDenserThanFixed(t *testing.T) {
	// The x86-like encoding must beat the SPARC-like one, as in reality.
	prog := compileProg(t, sampleSrc)
	fixed := len(EncodeFixed(prog.Code))
	variable := len(EncodeVariable(prog.Code))
	if variable >= fixed {
		t.Errorf("variable %d >= fixed %d", variable, fixed)
	}
	ratio := float64(variable) / float64(fixed)
	if ratio > 0.95 || ratio < 0.4 {
		t.Errorf("variable/fixed ratio %.2f outside plausible [0.4, 0.95]", ratio)
	}
}

func TestDecodedProgramRuns(t *testing.T) {
	prog := compileProg(t, sampleSrc)
	var want bytes.Buffer
	if _, err := vm.NewMachine(prog, 1<<20, &want).Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for name, codec := range map[string]func([]vm.Instr) []byte{
		"fixed":    EncodeFixed,
		"variable": EncodeVariable,
	} {
		enc := codec(prog.Code)
		var back []vm.Instr
		var err error
		if name == "fixed" {
			back, err = DecodeFixed(enc)
		} else {
			back, err = DecodeVariable(enc)
		}
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		clone := *prog
		clone.Code = back
		var got bytes.Buffer
		if _, err := vm.NewMachine(&clone, 1<<20, &got).Run(10_000_000); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: decoded program output %q != %q", name, got.String(), want.String())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFixed([]byte{1, 2, 3}); err == nil {
		t.Error("unaligned fixed input accepted")
	}
	if _, err := DecodeFixed([]byte{0xFF, 0, 0, 0}); err == nil {
		t.Error("bad fixed opcode accepted")
	}
	if _, err := DecodeVariable([]byte{0x7F}); err == nil {
		t.Error("bad variable opcode accepted")
	}
	prog := compileProg(t, `int main(void) { return 3; }`)
	enc := EncodeVariable(prog.Code)
	for cut := 1; cut < len(enc); cut += 2 {
		// Truncations either error or decode to fewer instructions —
		// never panic.
		_, _ = DecodeVariable(enc[:cut])
	}
}

func randInstr(rng *rand.Rand) vm.Instr {
	for {
		op := vm.Opcode(rng.Intn(vm.NumOpcodes-1) + 1)
		ins := vm.Instr{Op: op}
		for i, f := range op.Fields() {
			switch f {
			case vm.FReg:
				setNthReg(&ins, regIdx(op, i), uint8(rng.Intn(16)))
			case vm.FImm:
				ins.Imm = int32(rng.Uint32())
			case vm.FTgt:
				ins.Target = int32(rng.Intn(1 << 20))
			}
		}
		return ins
	}
}

// regIdx counts which register slot field i is.
func regIdx(op vm.Opcode, i int) int {
	n := 0
	for j, f := range op.Fields() {
		if j == i {
			return n
		}
		if f == vm.FReg {
			n++
		}
	}
	return n
}

// TestQuickRoundTripBothCodecs: arbitrary instruction sequences
// round-trip bit-exactly through both encodings.
func TestQuickRoundTripBothCodecs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		code := make([]vm.Instr, rng.Intn(200)+1)
		for i := range code {
			code[i] = randInstr(rng)
		}
		fb, err := DecodeFixed(EncodeFixed(code))
		if err != nil || !reflect.DeepEqual(fb, code) {
			return false
		}
		vb, err := DecodeVariable(EncodeVariable(code))
		if err != nil || !reflect.DeepEqual(vb, code) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeVariable(b *testing.B) {
	b.ReportAllocs()
	prog := compileProg(b, sampleSrc)
	b.SetBytes(int64(len(prog.Code) * 4))
	for i := 0; i < b.N; i++ {
		EncodeVariable(prog.Code)
	}
}
