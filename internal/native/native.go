// Package native provides the two "conventional code" baselines the
// paper measures against, as byte-exact encodings of VM programs:
//
//   - EncodeFixed: a SPARC-like fixed 32-bit word encoding (the wire
//     experiment's "conventional code" column). Instructions whose
//     immediate does not fit the word's 14-bit field take a second
//     word, mirroring SPARC's sethi/or pairs.
//
//   - EncodeVariable: an x86-like variable-length encoding (the BRISC
//     experiment's native baseline): one opcode byte, packed register
//     bytes, and 8- or 32-bit immediates selected per instruction.
//
// Both encodings decode back to the identical instruction sequence, so
// the baselines are real codes rather than size formulas; "native
// execution speed" in the experiments is the VM interpreter running
// the decoded program directly.
package native

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/vm"
)

// ErrCorrupt reports a malformed encoded stream.
var ErrCorrupt = errors.New("native: corrupt encoding")

const (
	// immBits is the in-word immediate width: bits [12:0], below the
	// rs2 field at [16:13] (SPARC's simm13, coincidentally).
	immBits  = 13
	immMax   = 1<<(immBits-1) - 1
	immMin   = -(1 << (immBits - 1))
	wideFlag = 1 << 25 // fixed-word bit marking a following imm32 word
)

// payloadKinds returns the immediate-like payloads an opcode carries,
// in encoding order: FImm first, then FTgt. Compare-immediate branches
// carry both.
func payloadKinds(op vm.Opcode) []vm.FieldKind {
	var ks []vm.FieldKind
	for _, f := range op.Fields() {
		if f == vm.FImm {
			ks = append(ks, f)
		}
	}
	for _, f := range op.Fields() {
		if f == vm.FTgt {
			ks = append(ks, f)
		}
	}
	return ks
}

func payloadVal(ins vm.Instr, k vm.FieldKind) int32 {
	if k == vm.FTgt {
		return ins.Target
	}
	return ins.Imm
}

func setPayloadVal(ins *vm.Instr, k vm.FieldKind, v int32) {
	if k == vm.FTgt {
		ins.Target = v
	} else {
		ins.Imm = v
	}
}

// EncodeFixed serializes code as SPARC-like 32-bit words.
// Word layout: [31:26]=op, [25]=wide, [24:21]=rd, [20:17]=rs1,
// [16:13]=rs2, [12:0]=imm14 (when !wide). The first payload lives in
// the word (or a following word when wide); any second payload (the
// target of a compare-immediate branch) always takes its own word —
// on a real RISC that instruction is a compare/branch pair anyway.
// Targets are absolute instruction indices, as in relocated text.
func EncodeFixed(code []vm.Instr) []byte {
	var out []byte
	for _, ins := range code {
		ks := payloadKinds(ins.Op)
		w := uint32(ins.Op)<<26 | uint32(ins.Rd)<<21 | uint32(ins.Rs1)<<17 | uint32(ins.Rs2)<<13
		var extra []int32
		if len(ks) > 0 {
			p0 := payloadVal(ins, ks[0])
			if p0 >= immMin && p0 <= immMax {
				w |= uint32(p0) & ((1 << immBits) - 1)
			} else {
				w |= wideFlag
				extra = append(extra, p0)
			}
			for _, k := range ks[1:] {
				extra = append(extra, payloadVal(ins, k))
			}
		}
		out = binary.BigEndian.AppendUint32(out, w)
		for _, v := range extra {
			out = binary.BigEndian.AppendUint32(out, uint32(v))
		}
	}
	return out
}

// DecodeFixed reverses EncodeFixed.
func DecodeFixed(data []byte) ([]vm.Instr, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("%w: length %d not word-aligned", ErrCorrupt, len(data))
	}
	var code []vm.Instr
	for i := 0; i < len(data); i += 4 {
		w := binary.BigEndian.Uint32(data[i:])
		op := vm.Opcode(w >> 26)
		if !op.Valid() {
			return nil, fmt.Errorf("%w: opcode %d at word %d", ErrCorrupt, op, i/4)
		}
		ins := vm.Instr{
			Op:  op,
			Rd:  uint8(w >> 21 & 0xF),
			Rs1: uint8(w >> 17 & 0xF),
			Rs2: uint8(w >> 13 & 0xF),
		}
		ks := payloadKinds(op)
		if len(ks) > 0 {
			if w&wideFlag != 0 {
				i += 4
				if i+4 > len(data) {
					return nil, fmt.Errorf("%w: truncated wide immediate", ErrCorrupt)
				}
				setPayloadVal(&ins, ks[0], int32(binary.BigEndian.Uint32(data[i:])))
			} else {
				v := int32(w&((1<<immBits)-1)) << (32 - immBits) >> (32 - immBits)
				setPayloadVal(&ins, ks[0], v)
			}
			for _, k := range ks[1:] {
				i += 4
				if i+4 > len(data) {
					return nil, fmt.Errorf("%w: truncated payload word", ErrCorrupt)
				}
				setPayloadVal(&ins, k, int32(binary.BigEndian.Uint32(data[i:])))
			}
		}
		code = append(code, ins)
	}
	return code, nil
}

func regCount(op vm.Opcode) int {
	n := 0
	for _, f := range op.Fields() {
		if f == vm.FReg {
			n++
		}
	}
	return n
}

// Variable-encoding opcode byte flags: bit 7 widens the first payload,
// bit 6 widens the second (opcodes fit in the low 6 bits).
const (
	wideOpFlag  = 0x80
	wideOpFlag2 = 0x40
	opMask      = 0x3F
)

func fitsByte(v int32) bool { return v >= -128 && v <= 127 }

// Wide payloads use 2 bytes when the value fits int16 (x86's 16-bit
// immediate forms), escaping to 4 bytes via the 0x8000 sentinel —
// which is itself re-encoded through the escape.
const wideSentinel = 0x8000

func appendWide(out []byte, v int32) []byte {
	if v >= -32768 && v <= 32767 && uint16(v) != wideSentinel {
		return binary.LittleEndian.AppendUint16(out, uint16(v))
	}
	out = binary.LittleEndian.AppendUint16(out, wideSentinel)
	return binary.LittleEndian.AppendUint32(out, uint32(v))
}

func wideSize(v int32) int {
	if v >= -32768 && v <= 32767 && uint16(v) != wideSentinel {
		return 2
	}
	return 6
}

// EncodeVariable serializes code in the x86-like variable-length form:
// opcode byte (bits 7/6 flag wide payloads), zero to two register bytes
// (two registers pack into one byte), then each payload as 1 byte, or
// — when flagged wide — 2 bytes (int16) or an escaped 6 bytes.
func EncodeVariable(code []vm.Instr) []byte {
	var out []byte
	for _, ins := range code {
		ks := payloadKinds(ins.Op)
		op := byte(ins.Op)
		if len(ks) > 0 && !fitsByte(payloadVal(ins, ks[0])) {
			op |= wideOpFlag
		}
		if len(ks) > 1 && !fitsByte(payloadVal(ins, ks[1])) {
			op |= wideOpFlag2
		}
		out = append(out, op)
		regs := encRegs(ins)
		switch len(regs) {
		case 0:
		case 1:
			out = append(out, regs[0])
		case 2:
			out = append(out, regs[0]<<4|regs[1])
		case 3:
			out = append(out, regs[0]<<4|regs[1], regs[2])
		}
		for pi, k := range ks {
			v := payloadVal(ins, k)
			wide := (pi == 0 && op&wideOpFlag != 0) || (pi == 1 && op&wideOpFlag2 != 0)
			if wide {
				out = appendWide(out, v)
			} else {
				out = append(out, byte(int8(v)))
			}
		}
	}
	return out
}

// encRegs returns the register operands in canonical order.
func encRegs(ins vm.Instr) []uint8 {
	var regs []uint8
	for _, f := range ins.Op.Fields() {
		if f == vm.FReg {
			regs = append(regs, nthReg(ins, len(regs)))
		}
	}
	return regs
}

// nthReg maps operand slots onto the Instr fields per opcode family.
func nthReg(ins vm.Instr, n int) uint8 {
	switch ins.Op {
	case vm.LDW, vm.LDB:
		return [2]uint8{ins.Rd, ins.Rs1}[n]
	case vm.STW, vm.STB:
		return [2]uint8{ins.Rs2, ins.Rs1}[n]
	case vm.LDI:
		return ins.Rd
	case vm.ADDI:
		return [2]uint8{ins.Rd, ins.Rs1}[n]
	case vm.MOV, vm.NEG, vm.NOT:
		return [2]uint8{ins.Rd, ins.Rs1}[n]
	case vm.RJR:
		return ins.Rs1
	default:
		if ins.Op.IsBranch() {
			if ins.Op.IsImmBranch() {
				return ins.Rs1
			}
			return [2]uint8{ins.Rs1, ins.Rs2}[n]
		}
		return [3]uint8{ins.Rd, ins.Rs1, ins.Rs2}[n]
	}
}

func setNthReg(ins *vm.Instr, n int, r uint8) {
	switch ins.Op {
	case vm.LDW, vm.LDB:
		if n == 0 {
			ins.Rd = r
		} else {
			ins.Rs1 = r
		}
	case vm.STW, vm.STB:
		if n == 0 {
			ins.Rs2 = r
		} else {
			ins.Rs1 = r
		}
	case vm.LDI:
		ins.Rd = r
	case vm.ADDI, vm.MOV, vm.NEG, vm.NOT:
		if n == 0 {
			ins.Rd = r
		} else {
			ins.Rs1 = r
		}
	case vm.RJR:
		ins.Rs1 = r
	default:
		if ins.Op.IsBranch() {
			if ins.Op.IsImmBranch() {
				ins.Rs1 = r
			} else if n == 0 {
				ins.Rs1 = r
			} else {
				ins.Rs2 = r
			}
			return
		}
		switch n {
		case 0:
			ins.Rd = r
		case 1:
			ins.Rs1 = r
		default:
			ins.Rs2 = r
		}
	}
}

// DecodeVariable reverses EncodeVariable.
func DecodeVariable(data []byte) ([]vm.Instr, error) {
	var code []vm.Instr
	i := 0
	for i < len(data) {
		opb := data[i]
		i++
		op := vm.Opcode(opb & opMask)
		if !op.Valid() {
			return nil, fmt.Errorf("%w: opcode byte %#x at %d", ErrCorrupt, opb, i-1)
		}
		ins := vm.Instr{Op: op}
		nr := regCount(op)
		switch nr {
		case 0:
		case 1:
			if i >= len(data) {
				return nil, fmt.Errorf("%w: truncated registers", ErrCorrupt)
			}
			setNthReg(&ins, 0, data[i]&0xF)
			i++
		case 2:
			if i >= len(data) {
				return nil, fmt.Errorf("%w: truncated registers", ErrCorrupt)
			}
			setNthReg(&ins, 0, data[i]>>4)
			setNthReg(&ins, 1, data[i]&0xF)
			i++
		case 3:
			if i+1 >= len(data) {
				return nil, fmt.Errorf("%w: truncated registers", ErrCorrupt)
			}
			setNthReg(&ins, 0, data[i]>>4)
			setNthReg(&ins, 1, data[i]&0xF)
			setNthReg(&ins, 2, data[i+1]&0xF)
			i += 2
		}
		for pi, k := range payloadKinds(op) {
			wide := (pi == 0 && opb&wideOpFlag != 0) || (pi == 1 && opb&wideOpFlag2 != 0)
			if wide {
				if i+2 > len(data) {
					return nil, fmt.Errorf("%w: truncated imm16", ErrCorrupt)
				}
				u := binary.LittleEndian.Uint16(data[i:])
				i += 2
				if u == wideSentinel {
					if i+4 > len(data) {
						return nil, fmt.Errorf("%w: truncated imm32", ErrCorrupt)
					}
					setPayloadVal(&ins, k, int32(binary.LittleEndian.Uint32(data[i:])))
					i += 4
				} else {
					setPayloadVal(&ins, k, int32(int16(u)))
				}
			} else {
				if i >= len(data) {
					return nil, fmt.Errorf("%w: truncated imm8", ErrCorrupt)
				}
				setPayloadVal(&ins, k, int32(int8(data[i])))
				i++
			}
		}
		code = append(code, ins)
	}
	return code, nil
}

// FixedSize reports len(EncodeFixed(code)) without materializing it.
func FixedSize(code []vm.Instr) int {
	n := 0
	for _, ins := range code {
		n += 4
		ks := payloadKinds(ins.Op)
		if len(ks) > 0 {
			if p0 := payloadVal(ins, ks[0]); p0 < immMin || p0 > immMax {
				n += 4
			}
			n += 4 * (len(ks) - 1)
		}
	}
	return n
}

// VariableSize reports len(EncodeVariable(code)) without materializing it.
func VariableSize(code []vm.Instr) int {
	n := 0
	for _, ins := range code {
		n++ // opcode
		switch regCount(ins.Op) {
		case 1, 2:
			n++
		case 3:
			n += 2
		}
		for _, k := range payloadKinds(ins.Op) {
			if v := payloadVal(ins, k); fitsByte(v) {
				n++
			} else {
				n += wideSize(v)
			}
		}
	}
	return n
}
