package native

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/vm"
)

// Program container format: the "conventional executable" the baselines
// ship — a header (name, globals, function table) plus the
// variable-encoded text segment. This is what a native loader would
// receive; the wire and BRISC objects are its compressed competitors.

var progMagic = [4]byte{'N', 'E', 'X', '1'}

// EncodeProgram serializes a complete VM program with the x86-like
// variable text encoding.
func EncodeProgram(p *vm.Program) []byte {
	var b []byte
	b = append(b, progMagic[:]...)
	b = appendString(b, p.Name)
	b = appendUvarint(b, uint64(p.DataSize))
	b = appendUvarint(b, uint64(len(p.Globals)))
	for _, g := range p.Globals {
		b = appendString(b, g.Name)
		b = appendUvarint(b, uint64(g.Addr))
		b = appendUvarint(b, uint64(g.Size))
		b = appendUvarint(b, uint64(len(g.Init)))
		b = append(b, g.Init...)
	}
	b = appendUvarint(b, uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		b = appendString(b, f.Name)
		b = appendUvarint(b, uint64(f.Entry))
		b = appendUvarint(b, uint64(f.End))
		b = appendUvarint(b, uint64(f.Frame))
	}
	text := EncodeVariable(p.Code)
	b = appendUvarint(b, uint64(len(text)))
	b = append(b, text...)
	return b
}

// DecodeProgram reverses EncodeProgram.
func DecodeProgram(data []byte) (*vm.Program, error) {
	if len(data) < 4 || !bytes.Equal(data[:4], progMagic[:]) {
		return nil, fmt.Errorf("%w: bad program magic", ErrCorrupt)
	}
	r := &reader{data: data, pos: 4}
	p := &vm.Program{}
	var err error
	if p.Name, err = r.str(); err != nil {
		return nil, err
	}
	ds, err := r.uv()
	if err != nil || ds > 1<<31 {
		return nil, fmt.Errorf("%w: data size", ErrCorrupt)
	}
	p.DataSize = int(ds)
	ng, err := r.uv()
	if err != nil || ng > 1<<20 {
		return nil, fmt.Errorf("%w: globals count", ErrCorrupt)
	}
	for i := uint64(0); i < ng; i++ {
		var g vm.GlobalData
		if g.Name, err = r.str(); err != nil {
			return nil, err
		}
		addr, err := r.uv()
		if err != nil {
			return nil, err
		}
		size, err := r.uv()
		if err != nil || size > 1<<28 {
			return nil, fmt.Errorf("%w: global size", ErrCorrupt)
		}
		il, err := r.uv()
		if err != nil || il > size {
			return nil, fmt.Errorf("%w: global init", ErrCorrupt)
		}
		g.Addr, g.Size = int32(addr), int(size)
		if g.Init, err = r.take(int(il)); err != nil {
			return nil, err
		}
		p.Globals = append(p.Globals, g)
	}
	nf, err := r.uv()
	if err != nil || nf > 1<<20 {
		return nil, fmt.Errorf("%w: function count", ErrCorrupt)
	}
	for i := uint64(0); i < nf; i++ {
		var f vm.FuncInfo
		if f.Name, err = r.str(); err != nil {
			return nil, err
		}
		entry, err := r.uv()
		if err != nil {
			return nil, err
		}
		end, err := r.uv()
		if err != nil {
			return nil, err
		}
		frame, err := r.uv()
		if err != nil {
			return nil, err
		}
		f.Entry, f.End, f.Frame = int(entry), int(end), int(frame)
		p.Funcs = append(p.Funcs, f)
	}
	tl, err := r.uv()
	if err != nil || tl > 1<<30 {
		return nil, fmt.Errorf("%w: text length", ErrCorrupt)
	}
	text, err := r.take(int(tl))
	if err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	if p.Code, err = DecodeVariable(text); err != nil {
		return nil, err
	}
	p.ComputeBlockStarts()
	return p, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) uv() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: varint at %d", ErrCorrupt, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("%w: truncated (%d wanted)", ErrCorrupt, n)
	}
	b := make([]byte, n)
	copy(b, r.data[r.pos:])
	r.pos += n
	return b, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uv()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: string too long", ErrCorrupt)
	}
	b, err := r.take(int(n))
	return string(b), err
}

func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(dst, buf[:binary.PutUvarint(buf[:], v)]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
