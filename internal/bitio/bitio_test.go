package bitio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBits(0xAB, 8); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBits(0x3FFFF, 18); err != nil {
		t.Fatal(err)
	}
	if got, want := bw.BitsWritten(), int64(29); got != want {
		t.Errorf("BitsWritten = %d, want %d", got, want)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), 4; got != want {
		t.Fatalf("output length = %d, want %d", got, want)
	}

	br := NewReader(&buf)
	v, err := br.ReadBits(3)
	if err != nil || v != 0b101 {
		t.Fatalf("ReadBits(3) = %v, %v; want 5", v, err)
	}
	v, err = br.ReadBits(8)
	if err != nil || v != 0xAB {
		t.Fatalf("ReadBits(8) = %#x, %v; want 0xAB", v, err)
	}
	v, err = br.ReadBits(18)
	if err != nil || v != 0x3FFFF {
		t.Fatalf("ReadBits(18) = %#x, %v; want 0x3FFFF", v, err)
	}
}

func TestMSBFirstPacking(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for _, b := range []uint{1, 0, 1} {
		if err := bw.WriteBit(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Bytes()[0], byte(0b10100000); got != want {
		t.Errorf("packed byte = %08b, want %08b", got, want)
	}
}

func TestFlushIdempotent(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteByte(0x7F); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1 {
		t.Errorf("double Flush wrote extra bytes: len=%d", buf.Len())
	}
}

func TestReadEOF(t *testing.T) {
	br := NewReader(bytes.NewReader(nil))
	if _, err := br.ReadBit(); err != io.EOF {
		t.Errorf("ReadBit at EOF = %v, want io.EOF", err)
	}
}

func TestOverflow(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0, 65); err != ErrOverflow {
		t.Errorf("WriteBits(65) err = %v, want ErrOverflow", err)
	}
	br := NewReader(&buf)
	if _, err := br.ReadBits(65); err != ErrOverflow {
		t.Errorf("ReadBits(65) err = %v, want ErrOverflow", err)
	}
}

func TestAlign(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0b1, 1); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteByte(0xCD); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	br := NewReader(&buf)
	if _, err := br.ReadBit(); err != nil {
		t.Fatal(err)
	}
	br.Align()
	b, err := br.ReadByte()
	if err != nil || b != 0xCD {
		t.Fatalf("after Align, ReadByte = %#x, %v; want 0xCD", b, err)
	}
	if got := br.BitsRead(); got != 16 {
		t.Errorf("BitsRead = %d, want 16", got)
	}
}

// TestRoundTripQuick checks that any sequence of (value, width) pairs
// written and re-read yields the original values.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, int(n)%64+1)
		for i := range items {
			width := uint(rng.Intn(64) + 1)
			items[i] = item{v: rng.Uint64() & (^uint64(0) >> (64 - width)), n: width}
		}
		var buf bytes.Buffer
		bw := NewWriter(&buf)
		for _, it := range items {
			if err := bw.WriteBits(it.v, it.n); err != nil {
				return false
			}
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		br := NewReader(&buf)
		for _, it := range items {
			v, err := br.ReadBits(it.n)
			if err != nil || v != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsWrittenMatchesBitsRead(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	widths := []uint{1, 7, 13, 32, 64, 3}
	var total uint
	for i, w := range widths {
		if err := bw.WriteBits(uint64(i), w); err != nil {
			t.Fatal(err)
		}
		total += w
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := bw.BitsWritten(); got != int64(total) {
		t.Errorf("BitsWritten = %d, want %d", got, total)
	}
	br := NewReader(&buf)
	for i, w := range widths {
		v, err := br.ReadBits(w)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) {
			t.Errorf("value %d: got %d", i, v)
		}
	}
	if got := br.BitsRead(); got != int64(total) {
		t.Errorf("BitsRead = %d, want %d", got, total)
	}
}
