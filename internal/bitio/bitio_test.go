package bitio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBits(0xAB, 8); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBits(0x3FFFF, 18); err != nil {
		t.Fatal(err)
	}
	if got, want := bw.BitsWritten(), int64(29); got != want {
		t.Errorf("BitsWritten = %d, want %d", got, want)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), 4; got != want {
		t.Fatalf("output length = %d, want %d", got, want)
	}

	br := NewReader(&buf)
	v, err := br.ReadBits(3)
	if err != nil || v != 0b101 {
		t.Fatalf("ReadBits(3) = %v, %v; want 5", v, err)
	}
	v, err = br.ReadBits(8)
	if err != nil || v != 0xAB {
		t.Fatalf("ReadBits(8) = %#x, %v; want 0xAB", v, err)
	}
	v, err = br.ReadBits(18)
	if err != nil || v != 0x3FFFF {
		t.Fatalf("ReadBits(18) = %#x, %v; want 0x3FFFF", v, err)
	}
}

func TestMSBFirstPacking(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for _, b := range []uint{1, 0, 1} {
		if err := bw.WriteBit(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Bytes()[0], byte(0b10100000); got != want {
		t.Errorf("packed byte = %08b, want %08b", got, want)
	}
}

func TestFlushIdempotent(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteByte(0x7F); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1 {
		t.Errorf("double Flush wrote extra bytes: len=%d", buf.Len())
	}
}

func TestReadEOF(t *testing.T) {
	br := NewReader(bytes.NewReader(nil))
	if _, err := br.ReadBit(); err != io.EOF {
		t.Errorf("ReadBit at EOF = %v, want io.EOF", err)
	}
}

func TestOverflow(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0, 65); err != ErrOverflow {
		t.Errorf("WriteBits(65) err = %v, want ErrOverflow", err)
	}
	br := NewReader(&buf)
	if _, err := br.ReadBits(65); err != ErrOverflow {
		t.Errorf("ReadBits(65) err = %v, want ErrOverflow", err)
	}
}

func TestAlign(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0b1, 1); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteByte(0xCD); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	br := NewReader(&buf)
	if _, err := br.ReadBit(); err != nil {
		t.Fatal(err)
	}
	br.Align()
	b, err := br.ReadByte()
	if err != nil || b != 0xCD {
		t.Fatalf("after Align, ReadByte = %#x, %v; want 0xCD", b, err)
	}
	if got := br.BitsRead(); got != 16 {
		t.Errorf("BitsRead = %d, want 16", got)
	}
}

// TestRoundTripQuick checks that any sequence of (value, width) pairs
// written and re-read yields the original values.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, int(n)%64+1)
		for i := range items {
			width := uint(rng.Intn(64) + 1)
			items[i] = item{v: rng.Uint64() & (^uint64(0) >> (64 - width)), n: width}
		}
		var buf bytes.Buffer
		bw := NewWriter(&buf)
		for _, it := range items {
			if err := bw.WriteBits(it.v, it.n); err != nil {
				return false
			}
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		br := NewReader(&buf)
		for _, it := range items {
			v, err := br.ReadBits(it.n)
			if err != nil || v != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroWidth(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBits(0xFFFF, 0); err != nil {
		t.Fatal(err)
	}
	if got := bw.BitsWritten(); got != 0 {
		t.Errorf("BitsWritten after 0-bit write = %d, want 0", got)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("0-bit write produced %d bytes", buf.Len())
	}
	br := NewReaderBytes(nil)
	if v, err := br.ReadBits(0); err != nil || v != 0 {
		t.Errorf("ReadBits(0) at EOF = %d, %v; want 0, nil", v, err)
	}
	if got := br.BitsRead(); got != 0 {
		t.Errorf("BitsRead after 0-bit read = %d, want 0", got)
	}
}

func TestFullWidth(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	const v = uint64(0xDEADBEEFCAFEF00D)
	// A 3-bit prefix forces the 64-bit value to straddle accumulator
	// words on both ends.
	if err := bw.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBits(v, 64); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBits(^uint64(0), 64); err != nil {
		t.Fatal(err)
	}
	if got := bw.BitsWritten(); got != 131 {
		t.Errorf("BitsWritten = %d, want 131", got)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewReaderBytes(buf.Bytes())
	if got, err := br.ReadBits(3); err != nil || got != 0b101 {
		t.Fatalf("prefix = %d, %v", got, err)
	}
	if got, err := br.ReadBits(64); err != nil || got != v {
		t.Fatalf("ReadBits(64) = %#x, %v; want %#x", got, err, v)
	}
	if got, err := br.ReadBits(64); err != nil || got != ^uint64(0) {
		t.Fatalf("second ReadBits(64) = %#x, %v", got, err)
	}
	if got := br.BitsRead(); got != 131 {
		t.Errorf("BitsRead = %d, want 131", got)
	}
}

func TestAlignAfterPartialBytes(t *testing.T) {
	// Alignment from every in-byte phase, including already-aligned.
	for phase := uint(0); phase < 8; phase++ {
		var buf bytes.Buffer
		bw := NewWriter(&buf)
		if phase > 0 {
			if err := bw.WriteBits(0, phase); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteByte(0xA5); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		br := NewReaderBytes(buf.Bytes())
		if phase > 0 {
			if _, err := br.ReadBits(phase); err != nil {
				t.Fatal(err)
			}
		}
		br.Align()
		wantBits := int64(0)
		if phase > 0 {
			wantBits = 8
		}
		if got := br.BitsRead(); got != wantBits {
			t.Errorf("phase %d: BitsRead after Align = %d, want %d", phase, got, wantBits)
		}
		if b, err := br.ReadByte(); err != nil || b != 0xA5 {
			t.Errorf("phase %d: ReadByte after Align = %#x, %v", phase, b, err)
		}
	}
}

func TestBitsReadExactOnShortInput(t *testing.T) {
	// A failed wide read still accounts for the bits it consumed, like
	// the byte-at-a-time reader did.
	br := NewReaderBytes([]byte{0xFF})
	if _, err := br.ReadBits(13); err != io.EOF {
		t.Fatalf("ReadBits(13) on 8-bit input = %v, want io.EOF", err)
	}
	if got := br.BitsRead(); got != 8 {
		t.Errorf("BitsRead after short read = %d, want 8", got)
	}
	if _, err := br.ReadBit(); err != io.EOF {
		t.Errorf("ReadBit after EOF = %v, want io.EOF", err)
	}
}

func TestPeekSkip(t *testing.T) {
	data := []byte{0b1011_0011, 0b0101_1100, 0xF0}
	br := NewReaderBytes(data)
	if v, n := br.Peek(4); n != 4 || v != 0b1011 {
		t.Fatalf("Peek(4) = %04b, %d; want 1011, 4", v, n)
	}
	// Peek must not consume.
	if v, n := br.Peek(12); n != 12 || v != 0b1011_0011_0101 {
		t.Fatalf("Peek(12) = %012b, %d", v, n)
	}
	if got := br.BitsRead(); got != 0 {
		t.Fatalf("Peek consumed bits: BitsRead = %d", got)
	}
	br.Skip(4)
	if v, n := br.Peek(4); n != 4 || v != 0b0011 {
		t.Fatalf("after Skip(4), Peek(4) = %04b, %d", v, n)
	}
	if got := br.BitsRead(); got != 4 {
		t.Fatalf("BitsRead after Skip(4) = %d", got)
	}
	// Drain to 3 remaining bits; Peek must zero-pad and report avail.
	br.Skip(17)
	v, n := br.Peek(8)
	if n != 3 {
		t.Fatalf("Peek(8) near EOF: avail = %d, want 3", n)
	}
	if v != 0b0000_0000 {
		t.Fatalf("Peek(8) near EOF = %08b, want zero-padded 00000000", v)
	}
	br.Skip(n)
	if _, n := br.Peek(1); n != 0 {
		t.Errorf("Peek(1) at EOF: avail = %d, want 0", n)
	}
}

func TestReadWriteBytesBulk(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	for _, prefix := range []uint{0, 3, 8} {
		var buf bytes.Buffer
		bw := NewWriter(&buf)
		if err := bw.WriteBits(0b111, prefix); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteBytes(payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		want := int64(prefix) + 8*int64(len(payload))
		if got := bw.BitsWritten(); got != want {
			t.Fatalf("prefix %d: BitsWritten = %d, want %d", prefix, got, want)
		}
		for _, fromBytes := range []bool{true, false} {
			var br *Reader
			if fromBytes {
				br = NewReaderBytes(buf.Bytes())
			} else {
				br = NewReader(bytes.NewReader(buf.Bytes()))
			}
			if prefix > 0 {
				if _, err := br.ReadBits(prefix); err != nil {
					t.Fatal(err)
				}
			}
			got := make([]byte, len(payload))
			if err := br.ReadBytes(got); err != nil {
				t.Fatalf("prefix %d: ReadBytes: %v", prefix, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("prefix %d (bytes=%v): ReadBytes mismatch", prefix, fromBytes)
			}
			if got := br.BitsRead(); got != want {
				t.Fatalf("prefix %d: BitsRead = %d, want %d", prefix, got, want)
			}
		}
	}
}

func TestReadBytesShortInput(t *testing.T) {
	br := NewReaderBytes([]byte{1, 2, 3})
	p := make([]byte, 5)
	if err := br.ReadBytes(p); err != io.EOF {
		t.Fatalf("ReadBytes past EOF = %v, want io.EOF", err)
	}
	if p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Errorf("partial fill lost data: % x", p)
	}
}

// TestReaderBytesMatchesReader cross-checks the two constructors over
// random mixed-width read schedules.
func TestReaderBytesMatchesReader(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1024)
	rng.Read(data)
	for trial := 0; trial < 50; trial++ {
		a := NewReaderBytes(data)
		b := NewReader(bytes.NewReader(data))
		for {
			n := uint(rng.Intn(64) + 1)
			va, ea := a.ReadBits(n)
			vb, eb := b.ReadBits(n)
			if va != vb || (ea == nil) != (eb == nil) {
				t.Fatalf("trial %d width %d: bytes-backed (%#x,%v) vs reader-backed (%#x,%v)",
					trial, n, va, ea, vb, eb)
			}
			if a.BitsRead() != b.BitsRead() {
				t.Fatalf("BitsRead diverged: %d vs %d", a.BitsRead(), b.BitsRead())
			}
			if ea != nil {
				break
			}
		}
	}
}

func TestBitsWrittenMatchesBitsRead(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	widths := []uint{1, 7, 13, 32, 64, 3}
	var total uint
	for i, w := range widths {
		if err := bw.WriteBits(uint64(i), w); err != nil {
			t.Fatal(err)
		}
		total += w
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := bw.BitsWritten(); got != int64(total) {
		t.Errorf("BitsWritten = %d, want %d", got, total)
	}
	br := NewReader(&buf)
	for i, w := range widths {
		v, err := br.ReadBits(w)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) {
			t.Errorf("value %d: got %d", i, v)
		}
	}
	if got := br.BitsRead(); got != int64(total) {
		t.Errorf("BitsRead = %d, want %d", got, total)
	}
}

// TestWriterReset checks that a recycled Writer produces bytes
// identical to a fresh one: same payload, counters restarted, prior
// error state cleared, grown slab reused transparently.
func TestWriterReset(t *testing.T) {
	write := func(bw *Writer) {
		if err := bw.WriteBits(0b1011, 4); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteBytes([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteBits(0xFFFFFFFFFFFFFFFF, 64); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var fresh bytes.Buffer
	write(NewWriter(&fresh))

	var first, second bytes.Buffer
	bw := NewWriter(&first)
	write(bw)
	bw.Reset(&second)
	if got := bw.BitsWritten(); got != 0 {
		t.Fatalf("BitsWritten after Reset = %d, want 0", got)
	}
	write(bw)
	if !bytes.Equal(second.Bytes(), fresh.Bytes()) {
		t.Errorf("reset writer output %x, want %x", second.Bytes(), fresh.Bytes())
	}
	if !bytes.Equal(first.Bytes(), fresh.Bytes()) {
		t.Errorf("pre-reset output was disturbed: %x, want %x", first.Bytes(), fresh.Bytes())
	}
}

// TestWriterResetClearsError checks a Writer is usable again after
// Reset clears a sticky write error.
func TestWriterResetClearsError(t *testing.T) {
	bw := NewWriter(failWriter{})
	for i := 0; i < writerSpill+8; i++ {
		bw.WriteByte(byte(i))
	}
	if bw.Flush() == nil {
		t.Fatal("expected sticky error from failing writer")
	}
	var buf bytes.Buffer
	bw.Reset(&buf)
	if err := bw.WriteByte(0x5A); err != nil {
		t.Fatalf("WriteByte after Reset: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), []byte{0x5A}) {
		t.Errorf("output after Reset = %x, want 5a", buf.Bytes())
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestWriterWordBoundary hits the accumulator spill edges: writes that
// land the accumulator exactly on 64 bits (the k == 0 carry case),
// straddle it by one bit, and chase a full word with unaligned bulk
// bytes. The per-bit writer is the reference.
func TestWriterWordBoundary(t *testing.T) {
	cases := [][][2]uint64{ // sequence of {value, width}
		{{0x0F0F0F0F0F0F0F0F, 64}},                          // whole word from empty
		{{0x1, 1}, {0x7FFFFFFFFFFFFFFF, 63}},                // fill to exactly 64 (k=0)
		{{0x1, 1}, {0xFFFFFFFFFFFFFFFF, 64}},                // straddle by one
		{{0x3, 2}, {0x3FFFFFFFFFFFFFFF, 62}, {0xAA, 8}},     // k=0 then continue
		{{0x12345, 17}, {0xFEDCBA9876543210, 64}, {0x5, 3}}, // straddle mid-word
		{{0x0, 7}, {0xFFFFFFFFFFFFFFFF, 57}, {0x0, 64}},     // fill, then zero word
	}
	for ci, seq := range cases {
		var fast, slow bytes.Buffer
		fw, sw := NewWriter(&fast), NewWriter(&slow)
		for _, vw := range seq {
			if err := fw.WriteBits(vw[0], uint(vw[1])); err != nil {
				t.Fatal(err)
			}
			for i := int(vw[1]) - 1; i >= 0; i-- { // reference: bit at a time
				if err := sw.WriteBit(uint(vw[0] >> i & 1)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if fw.BitsWritten() != sw.BitsWritten() {
			t.Errorf("case %d: BitsWritten %d != reference %d", ci, fw.BitsWritten(), sw.BitsWritten())
		}
		fw.Flush()
		sw.Flush()
		if !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Errorf("case %d: WriteBits %x != per-bit reference %x", ci, fast.Bytes(), slow.Bytes())
		}
	}
}

// TestWriteBytesUnaligned checks the bulk path agrees with the per-bit
// path at every accumulator phase, including phases that are byte-
// aligned mid-word (nacc = 8, 16, ...) where the fast path must first
// spill pending accumulator bytes.
func TestWriteBytesUnaligned(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for phase := uint(0); phase < 24; phase++ {
		var fast, slow bytes.Buffer
		fw, sw := NewWriter(&fast), NewWriter(&slow)
		fw.WriteBits(0, phase)
		sw.WriteBits(0, phase)
		if err := fw.WriteBytes(payload); err != nil {
			t.Fatal(err)
		}
		for _, b := range payload {
			sw.WriteBits(uint64(b), 8)
		}
		fw.Flush()
		sw.Flush()
		if !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Errorf("phase %d: WriteBytes diverges from per-byte writes", phase)
		}
	}
}
