// Package bitio provides MSB-first bit-granular readers and writers used
// by every entropy coder in this repository (Huffman, arithmetic, and the
// wire/BRISC container formats).
//
// Bits are packed most-significant-bit first within each byte, so a
// stream written as WriteBit(1), WriteBit(0), WriteBit(1) occupies the
// top three bits of the first output byte (0b101xxxxx). This matches the
// canonical-Huffman convention in internal/huffman, where codes compare
// lexicographically as left-justified bit strings.
package bitio

import (
	"errors"
	"io"
)

// ErrOverflow is returned when a requested bit count exceeds what a
// single call supports (64 bits).
var ErrOverflow = errors.New("bitio: bit count out of range")

// Writer accumulates bits MSB-first and flushes whole bytes to an
// underlying io.Writer. The zero value is not usable; use NewWriter.
type Writer struct {
	w      io.Writer
	cur    byte // partially filled byte
	nbits  uint // number of bits used in cur (0..7)
	count  int64
	outbuf [1]byte
	err    error
}

// NewWriter returns a Writer that emits packed bytes to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// WriteBit appends a single bit (any nonzero b counts as 1).
func (bw *Writer) WriteBit(b uint) error {
	if bw.err != nil {
		return bw.err
	}
	bw.cur <<= 1
	if b != 0 {
		bw.cur |= 1
	}
	bw.nbits++
	bw.count++
	if bw.nbits == 8 {
		bw.outbuf[0] = bw.cur
		if _, err := bw.w.Write(bw.outbuf[:]); err != nil {
			bw.err = err
			return err
		}
		bw.cur, bw.nbits = 0, 0
	}
	return nil
}

// WriteBits appends the low n bits of v, most significant first.
func (bw *Writer) WriteBits(v uint64, n uint) error {
	if n > 64 {
		return ErrOverflow
	}
	for i := int(n) - 1; i >= 0; i-- {
		if err := bw.WriteBit(uint(v>>uint(i)) & 1); err != nil {
			return err
		}
	}
	return nil
}

// WriteByte appends 8 bits.
func (bw *Writer) WriteByte(b byte) error {
	return bw.WriteBits(uint64(b), 8)
}

// BitsWritten reports the total number of bits accepted so far,
// including any bits still buffered in the current partial byte.
func (bw *Writer) BitsWritten() int64 { return bw.count }

// Flush pads the current partial byte with zero bits and writes it.
// It is safe to call Flush when the stream is already byte-aligned.
func (bw *Writer) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.nbits == 0 {
		return nil
	}
	bw.cur <<= 8 - bw.nbits
	bw.outbuf[0] = bw.cur
	if _, err := bw.w.Write(bw.outbuf[:]); err != nil {
		bw.err = err
		return err
	}
	bw.cur, bw.nbits = 0, 0
	return nil
}

// Reader consumes bits MSB-first from an underlying io.Reader.
type Reader struct {
	r     io.Reader
	cur   byte
	nbits uint // bits remaining in cur
	count int64
	inbuf [1]byte
}

// NewReader returns a Reader that unpacks bits from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// ReadBit returns the next bit (0 or 1). At end of input it returns
// io.EOF (possibly io.ErrUnexpectedEOF from the underlying reader).
func (br *Reader) ReadBit() (uint, error) {
	if br.nbits == 0 {
		if _, err := io.ReadFull(br.r, br.inbuf[:]); err != nil {
			return 0, err
		}
		br.cur = br.inbuf[0]
		br.nbits = 8
	}
	br.nbits--
	br.count++
	return uint(br.cur>>br.nbits) & 1, nil
}

// ReadBits reads n bits and returns them right-justified.
func (br *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrOverflow
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadByte reads 8 bits.
func (br *Reader) ReadByte() (byte, error) {
	v, err := br.ReadBits(8)
	return byte(v), err
}

// BitsRead reports the total number of bits consumed so far.
func (br *Reader) BitsRead() int64 { return br.count }

// Align discards bits up to the next byte boundary.
func (br *Reader) Align() {
	br.count += int64(br.nbits)
	br.nbits = 0
}
