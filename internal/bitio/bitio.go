// Package bitio provides MSB-first bit-granular readers and writers used
// by every entropy coder in this repository (Huffman, arithmetic, and the
// wire/BRISC container formats).
//
// Bits are packed most-significant-bit first within each byte, so a
// stream written as WriteBit(1), WriteBit(0), WriteBit(1) occupies the
// top three bits of the first output byte (0b101xxxxx). This matches the
// canonical-Huffman convention in internal/huffman, where codes compare
// lexicographically as left-justified bit strings.
//
// Both directions run on a 64-bit accumulator: the Writer packs bits
// left-justified into a word and spills completed bytes to an internal
// slab (handed to the underlying io.Writer on Flush or when the slab
// fills), and the Reader refills its word from an internal byte slab —
// either the caller's slice (NewReaderBytes) or a read-ahead buffer over
// an io.Reader. The Reader therefore consumes from the underlying
// io.Reader ahead of the bit position; do not interleave direct reads of
// the underlying reader with Reader use.
package bitio

import (
	"encoding/binary"
	"errors"
	"io"
)

// ErrOverflow is returned when a requested bit count exceeds what a
// single call supports (64 bits).
var ErrOverflow = errors.New("bitio: bit count out of range")

// writerSpill is the slab size at which the Writer hands accumulated
// bytes to the underlying io.Writer ahead of Flush.
const writerSpill = 32 << 10

// readerSlab is the read-ahead buffer size for io.Reader-backed Readers.
const readerSlab = 4 << 10

// Writer accumulates bits MSB-first and flushes whole bytes to an
// underlying io.Writer. The zero value is not usable; use NewWriter.
//
// Invariant: acc holds nacc valid bits left-justified (bit 63 is the
// oldest pending bit) and every bit below them is zero, so Flush can pad
// by rounding nacc up. The accumulator fills to a complete 64-bit word
// before spilling — eight bytes land in the slab per spill instead of
// one — which is the write-side mirror of the Reader's word-at-a-time
// refill.
type Writer struct {
	w     io.Writer
	acc   uint64
	nacc  uint // 0..63 between calls
	count int64
	buf   []byte
	err   error
}

// NewWriter returns a Writer that emits packed bytes to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Reset redirects the Writer to w, reusing the grown output slab. All
// accumulator state and counters restart from zero and any previous
// error is cleared, so one Writer can encode many streams without
// reallocating.
func (bw *Writer) Reset(w io.Writer) {
	bw.w = w
	bw.acc, bw.nacc, bw.count = 0, 0, 0
	bw.buf = bw.buf[:0]
	bw.err = nil
}

// drain writes the slab to the underlying writer.
func (bw *Writer) drain() {
	if bw.err != nil || len(bw.buf) == 0 {
		return
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = err
	}
	bw.buf = bw.buf[:0]
}

// spillAligned moves the accumulator's complete bytes into the slab.
// Callers must hold a byte-aligned accumulator (nacc divisible by 8).
func (bw *Writer) spillAligned() {
	for bw.nacc > 0 {
		bw.buf = append(bw.buf, byte(bw.acc>>56))
		bw.acc <<= 8
		bw.nacc -= 8
	}
}

// WriteBit appends a single bit (any nonzero b counts as 1).
func (bw *Writer) WriteBit(b uint) error {
	if bw.err != nil {
		return bw.err
	}
	if b != 0 {
		bw.acc |= 1 << (63 - bw.nacc)
	}
	bw.nacc++
	bw.count++
	if bw.nacc == 64 {
		bw.buf = binary.BigEndian.AppendUint64(bw.buf, bw.acc)
		bw.acc, bw.nacc = 0, 0
		if len(bw.buf) >= writerSpill {
			bw.drain()
		}
	}
	return bw.err
}

// WriteBits appends the low n bits of v, most significant first.
func (bw *Writer) WriteBits(v uint64, n uint) error {
	if n > 64 {
		return ErrOverflow
	}
	if bw.err != nil {
		return bw.err
	}
	if n == 0 {
		return nil
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	bw.count += int64(n)
	if bw.nacc+n < 64 {
		bw.acc |= v << (64 - bw.nacc - n)
		bw.nacc += n
		return nil
	}
	// The value fills (or straddles) the accumulator: the top bits
	// complete the current word, which spills whole, and the k leftover
	// bits start a fresh one. (Shifts by 64 yield 0 in Go, so k == 0
	// needs no special case.)
	k := bw.nacc + n - 64
	bw.acc |= v >> k
	bw.buf = binary.BigEndian.AppendUint64(bw.buf, bw.acc)
	bw.acc = v << (64 - k)
	bw.nacc = k
	if len(bw.buf) >= writerSpill {
		bw.drain()
	}
	return bw.err
}

// WriteByte appends 8 bits.
func (bw *Writer) WriteByte(b byte) error {
	return bw.WriteBits(uint64(b), 8)
}

// WriteBytes appends len(p) whole bytes. When the stream is
// byte-aligned the accumulator's pending bytes spill once and the
// payload lands in the slab as a single bulk append.
func (bw *Writer) WriteBytes(p []byte) error {
	if bw.err != nil {
		return bw.err
	}
	if bw.nacc&7 == 0 {
		bw.spillAligned()
		bw.buf = append(bw.buf, p...)
		bw.count += 8 * int64(len(p))
		if len(bw.buf) >= writerSpill {
			bw.drain()
		}
		return bw.err
	}
	for _, b := range p {
		if err := bw.WriteBits(uint64(b), 8); err != nil {
			return err
		}
	}
	return nil
}

// BitsWritten reports the total number of bits accepted so far,
// including any bits still buffered in the current partial byte.
func (bw *Writer) BitsWritten() int64 { return bw.count }

// Flush pads the current partial byte with zero bits and writes all
// buffered bytes to the underlying writer. It is safe to call Flush
// when the stream is already byte-aligned, and writing may continue
// after a Flush.
func (bw *Writer) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	// Low accumulator bits are already zero (see invariant), so
	// rounding up to a whole byte is the padding.
	bw.nacc = (bw.nacc + 7) &^ 7
	bw.spillAligned()
	bw.drain()
	return bw.err
}

// Reader consumes bits MSB-first from an internal byte slab, refilling
// a 64-bit accumulator a word at a time.
//
// Invariant: acc holds nacc valid bits left-justified (bit 63 is the
// next bit to be read) and every bit below them is zero.
type Reader struct {
	acc   uint64
	nacc  uint
	data  []byte // current slab; data[pos:] is not yet in acc
	pos   int
	count int64
	r     io.Reader // nil when reading from a caller-supplied slice
	buf   []byte    // read-ahead storage when r != nil
	eof   bool
	err   error // sticky non-EOF error from r
}

// NewReader returns a Reader that unpacks bits from r. The Reader reads
// ahead of the bit position; r must not be read directly afterwards.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// NewReaderBytes returns a Reader that unpacks bits directly from data
// without copying. This is the fast path for in-memory sources.
func NewReaderBytes(data []byte) *Reader {
	return &Reader{data: data}
}

// more pulls the next block of bytes from the underlying io.Reader into
// the read-ahead slab. It reports whether any bytes became available.
func (br *Reader) more() bool {
	if br.r == nil || br.eof || br.err != nil {
		return false
	}
	if br.buf == nil {
		br.buf = make([]byte, readerSlab)
	}
	for {
		n, err := br.r.Read(br.buf)
		if err == io.EOF {
			br.eof = true
		} else if err != nil {
			br.err = err
		}
		if n > 0 {
			br.data, br.pos = br.buf[:n], 0
			return true
		}
		if err != nil {
			return false
		}
	}
}

// refill tops the accumulator up from the slab, a whole word at a time
// when the accumulator is empty.
func (br *Reader) refill() {
	if br.nacc == 0 && len(br.data)-br.pos >= 8 {
		br.acc = binary.BigEndian.Uint64(br.data[br.pos:])
		br.pos += 8
		br.nacc = 64
		return
	}
	for br.nacc <= 56 {
		if br.pos >= len(br.data) {
			if !br.more() {
				return
			}
		}
		br.acc |= uint64(br.data[br.pos]) << (56 - br.nacc)
		br.pos++
		br.nacc += 8
	}
}

// inputErr is the error reported when the accumulator cannot be
// refilled: the underlying reader's error if it failed, io.EOF
// otherwise.
func (br *Reader) inputErr() error {
	if br.err != nil {
		return br.err
	}
	return io.EOF
}

// ReadBit returns the next bit (0 or 1). At end of input it returns
// io.EOF (or the underlying reader's error).
func (br *Reader) ReadBit() (uint, error) {
	if br.nacc == 0 {
		br.refill()
		if br.nacc == 0 {
			return 0, br.inputErr()
		}
	}
	b := uint(br.acc >> 63)
	br.acc <<= 1
	br.nacc--
	br.count++
	return b, nil
}

// ReadBits reads n bits and returns them right-justified. On short
// input it consumes whatever bits remain (reflected by BitsRead) and
// returns an error.
func (br *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrOverflow
	}
	if n != 0 && br.nacc >= n {
		v := br.acc >> (64 - n)
		br.acc <<= n
		br.nacc -= n
		br.count += int64(n)
		return v, nil
	}
	var v uint64
	for n > 0 {
		if br.nacc == 0 {
			br.refill()
			if br.nacc == 0 {
				return 0, br.inputErr()
			}
		}
		take := n
		if take > br.nacc {
			take = br.nacc
		}
		v = v<<take | br.acc>>(64-take)
		br.acc <<= take
		br.nacc -= take
		br.count += int64(take)
		n -= take
	}
	return v, nil
}

// ReadByte reads 8 bits.
func (br *Reader) ReadByte() (byte, error) {
	v, err := br.ReadBits(8)
	return byte(v), err
}

// ReadBytes fills p with the next len(p)*8 bits. When the stream is
// byte-aligned the bulk of the copy bypasses the accumulator. On short
// input it fills what it can and returns an error.
func (br *Reader) ReadBytes(p []byte) error {
	if br.nacc%8 != 0 {
		for i := range p {
			v, err := br.ReadBits(8)
			if err != nil {
				return err
			}
			p[i] = byte(v)
		}
		return nil
	}
	i := 0
	for i < len(p) && br.nacc >= 8 {
		p[i] = byte(br.acc >> 56)
		br.acc <<= 8
		br.nacc -= 8
		br.count += 8
		i++
	}
	for i < len(p) {
		if br.pos >= len(br.data) {
			if !br.more() {
				return br.inputErr()
			}
		}
		n := copy(p[i:], br.data[br.pos:])
		br.pos += n
		br.count += 8 * int64(n)
		i += n
	}
	return nil
}

// Peek returns the next n bits (n <= 56) right-justified without
// consuming them, plus the number of bits actually available. Past end
// of input the missing low bits read as zero; callers must not Skip
// more than the reported count.
func (br *Reader) Peek(n uint) (uint64, uint) {
	if br.nacc < n {
		br.refill()
	}
	if n == 0 {
		return 0, 0
	}
	m := br.nacc
	if m > n {
		m = n
	}
	return br.acc >> (64 - n), m
}

// Skip consumes n bits previously observed via Peek. n must not exceed
// the available count Peek reported.
func (br *Reader) Skip(n uint) {
	br.acc <<= n
	br.nacc -= n
	br.count += int64(n)
}

// BitsRead reports the total number of bits consumed so far.
func (br *Reader) BitsRead() int64 { return br.count }

// Align discards bits up to the next byte boundary.
func (br *Reader) Align() {
	if pad := uint(-br.count & 7); pad > 0 && br.nacc >= pad {
		br.Skip(pad)
	}
}
