package attrib

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/wire"
)

// WireReport attributes every byte of a WIR2 artifact. The attributed
// space is the container (after undoing the final LZ/arith stage),
// because that is where streams, tables, and metadata have distinct
// extents; FileBytes still records the on-disk artifact size.
func WireReport(source string, data []byte) (*Report, error) {
	insp, err := wire.Inspect(data)
	if err != nil {
		return nil, err
	}
	return wireReport(source, insp)
}

func wireReport(source string, insp *wire.Inspection) (*Report, error) {
	r := &Report{
		Kind:       KindWire,
		Source:     source,
		FileBytes:  insp.FileBytes,
		TotalBytes: insp.ContainerBytes,
		Space:      "container",
	}
	for _, s := range insp.Sections {
		r.Components = append(r.Components, Component{Name: s.Name, Class: s.Class, Start: s.Start, Bytes: s.Len})
	}
	for _, st := range insp.Streams {
		r.Streams = append(r.Streams, StreamStat{
			Name:       st.Name,
			Bytes:      st.Len,
			Symbols:    st.Count,
			ActualBits: st.PayloadBits,
			TableBits:  st.TableBits,
			H0Bits:     order0Bits(st.Symbols),
			H1Bits:     order1Bits(st.Symbols),
		})
	}
	var err error
	r.Funcs, r.Opcodes, err = wireFuncBits(insp)
	if err != nil {
		return nil, err
	}
	return r, r.Check()
}

// streamWalker steps through one coded stream, yielding the exact bit
// cost of each successive symbol: its entropy code plus, for a fresh
// MTF symbol (index 0), the first-occurrence varint it consumes.
type streamWalker struct {
	st    *wire.StreamInfo
	noMTF bool
	pos   int
	first int
}

func (sw *streamWalker) next() (int64, error) {
	if sw.pos >= len(sw.st.Symbols) {
		return 0, fmt.Errorf("attrib: stream %s underflow at symbol %d", sw.st.Name, sw.pos)
	}
	bits := int64(sw.st.SymBits[sw.pos])
	if !sw.noMTF && sw.st.Symbols[sw.pos] == 0 {
		if sw.first >= len(sw.st.Firsts) {
			return 0, fmt.Errorf("attrib: stream %s firsts underflow", sw.st.Name)
		}
		bits += int64(uvarintLen(zigzag32(sw.st.Firsts[sw.first]))) * 8
		sw.first++
	}
	sw.pos++
	return bits, nil
}

// wireFuncBits replays the module structure — each function's trees,
// each tree's shape, each shape's literal-carrying operators in prefix
// order — against the coded streams, attributing every symbol's exact
// bits to its source function and literal opcode. The remainder
// (Huffman tables, firsts counts, framing, metadata) is shared
// overhead reported at the section level.
func wireFuncBits(insp *wire.Inspection) ([]FuncStat, []OpcodeStat, error) {
	if len(insp.Streams) == 0 {
		return nil, nil, nil
	}
	shapeWalk := &streamWalker{st: &insp.Streams[0], noMTF: insp.Opt.NoMTF}
	litWalk := map[ir.Op]*streamWalker{}
	for i := 1; i < len(insp.Streams); i++ {
		st := &insp.Streams[i]
		litWalk[st.Op] = &streamWalker{st: st, noMTF: insp.Opt.NoMTF}
	}
	opBits := map[ir.Op]int64{}
	opCount := map[ir.Op]int64{}

	var funcs []FuncStat
	ti := 0
	for fi, name := range insp.FuncNames {
		fs := FuncStat{Name: name, Units: insp.TreeCounts[fi]}
		for k := 0; k < insp.TreeCounts[fi]; k++ {
			if ti >= len(insp.ShapeStream) {
				return nil, nil, fmt.Errorf("attrib: shape stream underflow at tree %d", ti)
			}
			bits, err := shapeWalk.next()
			if err != nil {
				return nil, nil, err
			}
			fs.Bits += bits
			id := insp.ShapeStream[ti]
			ti++
			if id < 0 || int(id) >= len(insp.Shapes) {
				return nil, nil, fmt.Errorf("attrib: shape id %d out of range", id)
			}
			for _, op := range insp.Shapes[id] {
				if op.Lit() == ir.LitNone {
					continue
				}
				sw := litWalk[op]
				if sw == nil {
					return nil, nil, fmt.Errorf("attrib: no literal stream for %s", op)
				}
				bits, err := sw.next()
				if err != nil {
					return nil, nil, err
				}
				fs.Bits += bits
				opBits[op] += bits
				opCount[op]++
			}
		}
		funcs = append(funcs, fs)
	}

	var opcodes []OpcodeStat
	for i := 1; i < len(insp.Streams); i++ {
		op := insp.Streams[i].Op
		opcodes = append(opcodes, OpcodeStat{Name: op.String(), Static: opCount[op], Bits: opBits[op]})
	}
	return funcs, opcodes, nil
}
