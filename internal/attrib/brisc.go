package attrib

import (
	"sort"

	"repro/internal/brisc"
	"repro/internal/vm"
)

// BriscReport attributes every byte of a serialized BRISC image. The
// attributed space is the file itself (BRISC has no final recoding
// stage), down to one component per learned dictionary entry.
func BriscReport(source string, data []byte) (*Report, error) {
	insp, err := brisc.Inspect(data)
	if err != nil {
		return nil, err
	}
	return briscReport(source, insp)
}

func briscReport(source string, insp *brisc.Inspection) (*Report, error) {
	r := &Report{
		Kind:       KindBrisc,
		Source:     source,
		FileBytes:  insp.FileBytes,
		TotalBytes: insp.FileBytes,
		Space:      "file",
	}
	for _, s := range insp.Sections {
		r.Components = append(r.Components, Component{Name: s.Name, Class: s.Class, Start: s.Start, Bytes: s.Len})
	}
	r.Streams = briscStreams(insp)
	r.Funcs = briscFuncs(insp)
	for op, n := range insp.OpStatic {
		if n > 0 {
			r.Opcodes = append(r.Opcodes, OpcodeStat{Name: vm.Opcode(op).Name(), Static: n})
		}
	}
	r.Dict = briscDict(insp)
	return r, r.Check()
}

// briscStreams builds the two entropy views of the code stream: the
// pattern-id sequence behind the one-byte Markov-coded opcodes (order-1
// entropy shows what the follower tables already exploit), and the
// operand nibble stream.
func briscStreams(insp *brisc.Inspection) []StreamStat {
	code := insp.Obj.Code
	var pids []int
	var nibbles []int
	var opcodeBits, operandBits int64
	opcodeBytes, operandBytes := 0, 0
	for _, u := range insp.Units {
		pids = append(pids, u.Pid)
		ob := 1
		if u.Escape {
			ob = 1 + uvarintLen(uint64(u.Pid))
		}
		opcodeBytes += ob
		operandBytes += int(u.Len) - ob
		for _, b := range code[int(u.Off)+ob : u.Off+u.Len] {
			nibbles = append(nibbles, int(b>>4), int(b&0xF))
		}
	}
	opcodeBits = int64(opcodeBytes) * 8
	operandBits = int64(operandBytes) * 8
	return []StreamStat{
		{
			Name: "code.opcodes", Bytes: opcodeBytes, Symbols: len(pids),
			ActualBits: opcodeBits,
			H0Bits:     order0Bits(pids),
			H1Bits:     order1Bits(pids),
		},
		{
			Name: "code.operands", Bytes: operandBytes, Symbols: len(nibbles),
			ActualBits: operandBits,
			H0Bits:     order0Bits(nibbles),
			H1Bits:     order1Bits(nibbles),
		},
	}
}

// briscFuncs attributes code-stream bytes to source functions. A
// function's extent runs from its entry block's byte offset to the
// next function's entry; units before the first entry (the start stub)
// are reported as "(startup)".
func briscFuncs(insp *brisc.Inspection) []FuncStat {
	o := insp.Obj
	type span struct {
		name  string
		start int32
	}
	var spans []span
	for _, f := range o.Funcs {
		if int(f.EntryBlock) < len(o.Blocks) {
			spans = append(spans, span{f.Name, o.Blocks[f.EntryBlock]})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	if len(spans) == 0 || spans[0].start > 0 {
		spans = append([]span{{"(startup)", 0}}, spans...)
	}
	stats := make([]FuncStat, len(spans))
	for i, s := range spans {
		stats[i].Name = s.name
	}
	si := 0
	for _, u := range insp.Units {
		for si+1 < len(spans) && u.Off >= spans[si+1].start {
			si++
		}
		stats[si].Units++
		stats[si].Bits += int64(u.Len) * 8
	}
	return stats
}

// briscDict joins the static dictionary cost model with the realized
// per-entry stream accounting: P (bytes saved versus base-pattern
// encoding of the same instructions) against the entry's serialized
// bytes and the paper's working-set W.
func briscDict(insp *brisc.Inspection) []DictStat {
	stats := make([]DictStat, len(insp.Dict))
	for i, d := range insp.Dict {
		stats[i] = DictStat{
			Pid:        d.Pid,
			Pattern:    d.Pattern,
			Learned:    d.Learned,
			EntryBytes: d.EntryBytes,
			ModelW:     d.ModelW,
		}
	}
	for _, u := range insp.Units {
		s := &stats[u.Pid]
		s.Units++
		s.StreamBytes += int(u.Len)
		s.BaseBytes += int(u.BaseLen)
	}
	for i := range stats {
		stats[i].SavedP = stats[i].BaseBytes - stats[i].StreamBytes
		stats[i].Net = stats[i].SavedP - stats[i].EntryBytes
	}
	return stats
}
