// Package attrib is the byte-attribution layer: it maps every byte of
// a WIR2 container or a BRISC image back to its origin — per stream
// segment, per opcode/pattern, per source function, and per dictionary
// entry — with the invariant that attributed bytes sum exactly to the
// artifact size (Check), plus an entropy report comparing actual coded
// bits against order-0 and order-1 entropy per stream, the paper's §5
// accounting turned into an inspectable data structure.
//
// The package reads the low-level partitions produced by wire.Inspect
// and brisc.Inspect; cmd/compscope renders its reports.
package attrib

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/telemetry"
)

// Artifact kinds.
const (
	KindWire  = "wir2"
	KindBrisc = "brisc"
)

// Component is one contiguous, named byte range of the attributed
// space. The Components of a Report partition it exactly.
type Component struct {
	Name  string
	Class string
	Start int
	Bytes int
}

// StreamStat is the entropy accounting of one coded symbol stream:
// what its symbols actually cost versus their order-0 and order-1
// entropy (the headroom a better model could still claim).
type StreamStat struct {
	Name       string
	Bytes      int     // full framed section bytes in the artifact
	Symbols    int     // symbols coded
	ActualBits int64   // bits spent on symbol payloads
	TableBits  int64   // bits spent on the code table (0 if none)
	H0Bits     float64 // order-0 entropy of the symbol sequence
	H1Bits     float64 // order-1 (conditional) entropy
}

// FuncStat attributes coded payload to one source function.
type FuncStat struct {
	Name  string
	Units int   // trees (wire) or code units (brisc)
	Bits  int64 // exact payload bits attributed to the function
}

// OpcodeStat joins one opcode's static footprint with (for hot
// reports) its dynamic dispatch count.
type OpcodeStat struct {
	Name   string
	Static int64 // static occurrences in the artifact
	Bits   int64 // payload bits attributed to the opcode's stream(s)
}

// DictStat audits one dictionary entry's economics after the fact:
// SavedP is the realized stream saving versus base-pattern encoding
// (the paper's P), EntryBytes the serialized table cost actually paid,
// ModelW the paper's working-set estimate W, and Net = SavedP −
// EntryBytes.
type DictStat struct {
	Pid         int
	Pattern     string
	Learned     bool
	Units       int // units encoded with this entry
	StreamBytes int // bytes those units occupy
	BaseBytes   int // bytes they would occupy with base patterns only
	SavedP      int
	EntryBytes  int
	ModelW      int
	Net         int
}

// Report is the complete attribution of one artifact.
type Report struct {
	Kind       string
	Source     string
	FileBytes  int    // the artifact on disk
	TotalBytes int    // the attributed space (wire: container; brisc: file)
	Space      string // what TotalBytes measures, for display
	Components []Component
	Streams    []StreamStat
	Funcs      []FuncStat
	Opcodes    []OpcodeStat
	Dict       []DictStat
}

// Check enforces the attribution invariant: components are contiguous
// from byte 0 and sum exactly to TotalBytes.
func (r *Report) Check() error {
	pos, sum := 0, 0
	for _, c := range r.Components {
		if c.Start != pos {
			return fmt.Errorf("attrib: gap at byte %d (component %q starts at %d)", pos, c.Name, c.Start)
		}
		pos = c.Start + c.Bytes
		sum += c.Bytes
	}
	if sum != r.TotalBytes {
		return fmt.Errorf("attrib: attributed %d bytes, artifact %s has %d", sum, r.Space, r.TotalBytes)
	}
	return nil
}

// ByClass aggregates component bytes by class, with classes in first-
// appearance order.
func (r *Report) ByClass() ([]string, map[string]int) {
	var order []string
	sums := map[string]int{}
	for _, c := range r.Components {
		if _, ok := sums[c.Class]; !ok {
			order = append(order, c.Class)
		}
		sums[c.Class] += c.Bytes
	}
	return order, sums
}

// Publish records the report as telemetry gauges/counters under
// attrib.<kind>., so the standard summary and JSON sinks render it.
func (r *Report) Publish(rec *telemetry.Recorder) {
	if !rec.Enabled() {
		return
	}
	p := "attrib." + r.Kind + "."
	rec.SetGauge(p+"file_bytes", float64(r.FileBytes))
	rec.SetGauge(p+"total_bytes", float64(r.TotalBytes))
	order, sums := r.ByClass()
	for _, class := range order {
		rec.SetGauge(p+"class."+class+".bytes", float64(sums[class]))
	}
	for _, st := range r.Streams {
		sp := p + "stream." + st.Name + "."
		rec.SetGauge(sp+"bytes", float64(st.Bytes))
		rec.SetGauge(sp+"actual_bits", float64(st.ActualBits))
		rec.SetGauge(sp+"h0_bits", st.H0Bits)
		rec.SetGauge(sp+"h1_bits", st.H1Bits)
	}
	for _, d := range r.Dict {
		if d.Learned {
			rec.SetGauge(fmt.Sprintf("%sdict.%d.net_bytes", p, d.Pid), float64(d.Net))
		}
	}
}

// Format renders the report as human-readable tables.
func Format(w io.Writer, r *Report) {
	fmt.Fprintf(w, "%s  %s artifact  %d bytes on disk, attributing %d %s bytes\n",
		r.Source, r.Kind, r.FileBytes, r.TotalBytes, r.Space)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  section\tbytes\t%%\n")
	order, sums := r.ByClass()
	total := 0
	for _, class := range order {
		fmt.Fprintf(tw, "  %s\t%d\t%.1f%%\n", class, sums[class], pct(sums[class], r.TotalBytes))
		total += sums[class]
	}
	fmt.Fprintf(tw, "  total\t%d\t%.1f%%\n", total, pct(total, r.TotalBytes))
	tw.Flush()

	if len(r.Streams) > 0 {
		fmt.Fprintf(w, "  streams (actual vs order-0 / order-1 entropy):\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  stream\tsyms\tbytes\tactual\tH0\tH1\theadroom\n")
		for _, st := range topStreams(r.Streams, 12) {
			head := "-"
			if st.ActualBits > 0 && st.H1Bits > 0 {
				head = fmt.Sprintf("%.1f%%", 100*(1-st.H1Bits/float64(st.ActualBits)))
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%db\t%.0fb\t%.0fb\t%s\n",
				st.Name, st.Symbols, st.Bytes, st.ActualBits, st.H0Bits, st.H1Bits, head)
		}
		tw.Flush()
	}

	if len(r.Funcs) > 0 {
		fmt.Fprintf(w, "  functions (payload bits, largest first):\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		funcs := append([]FuncStat(nil), r.Funcs...)
		sort.SliceStable(funcs, func(i, j int) bool { return funcs[i].Bits > funcs[j].Bits })
		if len(funcs) > 10 {
			funcs = funcs[:10]
		}
		for _, f := range funcs {
			fmt.Fprintf(tw, "  %s\t%d units\t%d bits\t(%.1f bytes)\n", f.Name, f.Units, f.Bits, float64(f.Bits)/8)
		}
		tw.Flush()
	}

	if learned := learnedDict(r.Dict); len(learned) > 0 {
		fmt.Fprintf(w, "  dictionary economics (P = realized saving, W = table cost, net = P − entry bytes):\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  entry\tunits\tstream\tbase\tP\tentry\tW\tnet\tpattern\n")
		sort.SliceStable(learned, func(i, j int) bool { return learned[i].Net > learned[j].Net })
		show := learned
		if len(show) > 15 {
			show = show[:15]
		}
		for _, d := range show {
			fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%d\t%d\t%d\t%+d\t%s\n",
				d.Pid, d.Units, d.StreamBytes, d.BaseBytes, d.SavedP, d.EntryBytes, d.ModelW, d.Net, d.Pattern)
		}
		if len(learned) > len(show) {
			fmt.Fprintf(tw, "  …\t%d more entries\n", len(learned)-len(show))
		}
		tw.Flush()
	}
}

// FormatString renders the report to a string.
func FormatString(r *Report) string {
	var buf bytes.Buffer
	Format(&buf, r)
	return buf.String()
}

func learnedDict(dict []DictStat) []DictStat {
	var out []DictStat
	for _, d := range dict {
		if d.Learned {
			out = append(out, d)
		}
	}
	return out
}

// topStreams returns up to n streams by descending byte size, keeping
// the shape stream (index 0) first when present.
func topStreams(streams []StreamStat, n int) []StreamStat {
	out := append([]StreamStat(nil), streams...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// uvarintLen mirrors the serializers' varint cost model.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func zigzag32(v int32) uint64 { return uint64(uint32(v<<1) ^ uint32(v>>31)) }
