package attrib

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Delta is one named quantity compared across two reports.
type Delta struct {
	Name     string
	Old, New int
}

// D returns the signed byte delta.
func (d Delta) D() int { return d.New - d.Old }

// DiffReport ranks where two artifacts' bytes moved: per section
// class, per stream, and per dictionary entry (matched by pattern, so
// adopted/dropped entries are called out explicitly).
type DiffReport struct {
	Kind               string
	OldSource          string
	NewSource          string
	OldTotal, NewTotal int
	Classes            []Delta    // section classes, ranked by |delta|
	Streams            []Delta    // streams, ranked by |delta|
	DictChanged        []Delta    // entries in both, ranked by |delta| (bytes = stream + entry)
	DictDropped        []DictStat // entries only in the old artifact
	DictAdded          []DictStat // entries only in the new artifact
}

// Diff compares two attribution reports of the same kind.
func Diff(old, new *Report) (*DiffReport, error) {
	if old.Kind != new.Kind {
		return nil, fmt.Errorf("attrib: cannot diff %s against %s", old.Kind, new.Kind)
	}
	d := &DiffReport{
		Kind:      old.Kind,
		OldSource: old.Source, NewSource: new.Source,
		OldTotal: old.TotalBytes, NewTotal: new.TotalBytes,
	}

	_, oldClasses := old.ByClass()
	_, newClasses := new.ByClass()
	d.Classes = rankDeltas(oldClasses, newClasses)

	oldStreams := map[string]int{}
	for _, st := range old.Streams {
		oldStreams[st.Name] = st.Bytes
	}
	newStreams := map[string]int{}
	for _, st := range new.Streams {
		newStreams[st.Name] = st.Bytes
	}
	d.Streams = rankDeltas(oldStreams, newStreams)

	// Dictionary entries match by pattern text, not pid: adoption
	// order shifts renumber entries between artifacts.
	oldDict := map[string]DictStat{}
	for _, ds := range learnedDict(old.Dict) {
		oldDict[ds.Pattern] = ds
	}
	newDict := map[string]DictStat{}
	for _, ds := range learnedDict(new.Dict) {
		newDict[ds.Pattern] = ds
	}
	dictBytes := func(ds DictStat) int { return ds.StreamBytes + ds.EntryBytes }
	for pat, ods := range oldDict {
		if nds, ok := newDict[pat]; ok {
			d.DictChanged = append(d.DictChanged, Delta{Name: pat, Old: dictBytes(ods), New: dictBytes(nds)})
		} else {
			d.DictDropped = append(d.DictDropped, ods)
		}
	}
	for pat, nds := range newDict {
		if _, ok := oldDict[pat]; !ok {
			d.DictAdded = append(d.DictAdded, nds)
		}
	}
	sortRank(d.DictChanged)
	sort.Slice(d.DictDropped, func(i, j int) bool { return dictBytes(d.DictDropped[i]) > dictBytes(d.DictDropped[j]) })
	sort.Slice(d.DictAdded, func(i, j int) bool { return dictBytes(d.DictAdded[i]) > dictBytes(d.DictAdded[j]) })
	return d, nil
}

func rankDeltas(old, new map[string]int) []Delta {
	seen := map[string]bool{}
	var out []Delta
	for name, ov := range old {
		out = append(out, Delta{Name: name, Old: ov, New: new[name]})
		seen[name] = true
	}
	for name, nv := range new {
		if !seen[name] {
			out = append(out, Delta{Name: name, New: nv})
		}
	}
	sortRank(out)
	return out
}

// sortRank orders by |delta| descending, name ascending for ties, so
// the biggest movers lead the report deterministically.
func sortRank(ds []Delta) {
	sort.Slice(ds, func(i, j int) bool {
		ai, aj := abs(ds[i].D()), abs(ds[j].D())
		if ai != aj {
			return ai > aj
		}
		return ds[i].Name < ds[j].Name
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// FormatDiff renders the ranked deltas.
func FormatDiff(w io.Writer, d *DiffReport) {
	fmt.Fprintf(w, "%s → %s  (%s)  total %d → %d bytes (%+d)\n",
		d.OldSource, d.NewSource, d.Kind, d.OldTotal, d.NewTotal, d.NewTotal-d.OldTotal)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  section\told\tnew\tdelta\n")
	for _, c := range d.Classes {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%+d\n", c.Name, c.Old, c.New, c.D())
	}
	tw.Flush()
	if len(d.Streams) > 0 {
		fmt.Fprintf(w, "  streams (ranked by |delta|):\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, s := range d.Streams {
			if s.D() == 0 {
				continue
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%+d\n", s.Name, s.Old, s.New, s.D())
		}
		tw.Flush()
	}
	for _, ds := range d.DictDropped {
		fmt.Fprintf(w, "  dict dropped: %s (was %d stream + %d entry bytes)\n", ds.Pattern, ds.StreamBytes, ds.EntryBytes)
	}
	for _, ds := range d.DictAdded {
		fmt.Fprintf(w, "  dict added:   %s (%d stream + %d entry bytes)\n", ds.Pattern, ds.StreamBytes, ds.EntryBytes)
	}
	if len(d.DictChanged) > 0 {
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		shown := 0
		for _, c := range d.DictChanged {
			if c.D() == 0 {
				continue
			}
			if shown == 0 {
				fmt.Fprintf(w, "  dict entries (ranked by |delta|, stream + entry bytes):\n")
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%+d\n", c.Name, c.Old, c.New, c.D())
			if shown++; shown >= 10 {
				break
			}
		}
		tw.Flush()
	}
}

// FormatDiffString renders the diff to a string.
func FormatDiffString(d *DiffReport) string {
	var buf bytes.Buffer
	FormatDiff(&buf, d)
	return buf.String()
}
