package attrib

import (
	"fmt"

	"repro/internal/brisc"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Artifact bundles an attribution report with the low-level inspection
// it was built from, for consumers (the hot join) that need per-unit
// detail beyond the report's aggregates. Exactly one of Wire/Brisc is
// non-nil, matching Report.Kind.
type Artifact struct {
	Report *Report
	Wire   *wire.Inspection
	Brisc  *brisc.Inspection
}

// Analyze dispatches on the artifact's magic, inspects it, and builds
// the attribution report. The report's Check invariant has already
// passed when Analyze returns nil error.
func Analyze(source string, data []byte) (*Artifact, error) {
	switch {
	case len(data) >= 4 && string(data[:4]) == "WIR2":
		insp, err := wire.Inspect(data)
		if err != nil {
			return nil, err
		}
		r, err := wireReport(source, insp)
		if err != nil {
			return nil, err
		}
		return &Artifact{Report: r, Wire: insp}, nil
	case len(data) >= 4 && string(data[:4]) == "BRS1":
		insp, err := brisc.Inspect(data)
		if err != nil {
			return nil, err
		}
		r, err := briscReport(source, insp)
		if err != nil {
			return nil, err
		}
		return &Artifact{Report: r, Brisc: insp}, nil
	default:
		return nil, fmt.Errorf("attrib: %s: not a WIR2 or BRS1 artifact", source)
	}
}

func opName(op int) string { return vm.Opcode(op).Name() }
