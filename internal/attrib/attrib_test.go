package attrib

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/brisc"
	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/workload"
)

// exampleSources returns every example module plus one corpus-scale
// workload, so the acceptance sweep covers both toy and realistic
// stream shapes.
func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{"wep": workload.Generate(workload.Wep)}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "modules", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example modules found: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(src)
	}
	return srcs
}

func buildArtifacts(t *testing.T, name, src string) (wireData, briscData []byte) {
	t.Helper()
	mod, err := cc.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: cc.Compile: %v", name, err)
	}
	wireData, err = wire.Compress(mod)
	if err != nil {
		t.Fatalf("%s: wire.Compress: %v", name, err)
	}
	prog, err := codegen.Generate(mod, codegen.Options{})
	if err != nil {
		t.Fatalf("%s: codegen: %v", name, err)
	}
	obj, err := brisc.Compress(prog, brisc.Options{})
	if err != nil {
		t.Fatalf("%s: brisc.Compress: %v", name, err)
	}
	return wireData, obj.Bytes()
}

// TestFullAccounting is the acceptance criterion: on every example
// module (and a corpus-scale workload), the attribution accounts for
// 100% of the bytes of both the WIR2 container and the BRISC image —
// Check passes and the per-class sums reproduce the total exactly.
func TestFullAccounting(t *testing.T) {
	for name, src := range exampleSources(t) {
		wireData, briscData := buildArtifacts(t, name, src)
		for _, tc := range []struct {
			kind string
			data []byte
		}{{KindWire, wireData}, {KindBrisc, briscData}} {
			art, err := Analyze(name, tc.data)
			if err != nil {
				t.Fatalf("%s/%s: Analyze: %v", name, tc.kind, err)
			}
			r := art.Report
			if r.Kind != tc.kind {
				t.Fatalf("%s: kind %s, want %s", name, r.Kind, tc.kind)
			}
			if err := r.Check(); err != nil {
				t.Errorf("%s/%s: %v", name, tc.kind, err)
			}
			_, sums := r.ByClass()
			total := 0
			for _, b := range sums {
				total += b
			}
			if total != r.TotalBytes {
				t.Errorf("%s/%s: class sums %d, artifact %d bytes", name, tc.kind, total, r.TotalBytes)
			}
			// Entropy sanity: conditioning never increases entropy.
			for _, st := range r.Streams {
				if st.H1Bits > st.H0Bits+1e-6 {
					t.Errorf("%s/%s: stream %s H1 %f > H0 %f", name, tc.kind, st.Name, st.H1Bits, st.H0Bits)
				}
			}
			// The human table must render without panicking and
			// mention the artifact.
			if out := FormatString(r); !strings.Contains(out, name) {
				t.Errorf("%s/%s: report does not name its source", name, tc.kind)
			}
		}
	}
}

// TestWireFuncBitsExact: per-function attribution must consume every
// stream symbol exactly once — the summed function bits equal the
// summed stream payload bits plus the first-occurrence value bytes.
func TestWireFuncBitsExact(t *testing.T) {
	for name, src := range exampleSources(t) {
		wireData, _ := buildArtifacts(t, name, src)
		art, err := Analyze(name, wireData)
		if err != nil {
			t.Fatal(err)
		}
		var funcBits int64
		for _, f := range art.Report.Funcs {
			funcBits += f.Bits
		}
		var streamBits int64
		for _, st := range art.Wire.Streams {
			streamBits += st.PayloadBits
			streamBits += int64(st.FirstsBytes-uvarintLen(uint64(len(st.Firsts)))) * 8
		}
		if funcBits != streamBits {
			t.Errorf("%s: functions account for %d bits, streams carry %d", name, funcBits, streamBits)
		}
	}
}

// TestDictEconomics: on a program where the compressor adopted
// patterns, the audited savings must be self-consistent — learned
// entries were actually used, and their realized P is what the
// base-vs-actual byte accounting says.
func TestDictEconomics(t *testing.T) {
	_, briscData := buildArtifacts(t, "sieve", workload.Kernels()["sieve"])
	art, err := Analyze("sieve", briscData)
	if err != nil {
		t.Fatal(err)
	}
	learned := learnedDict(art.Report.Dict)
	if len(learned) == 0 {
		t.Skip("compressor adopted no patterns on this input")
	}
	usedOne := false
	for _, d := range learned {
		if d.Units > 0 {
			usedOne = true
			if d.SavedP != d.BaseBytes-d.StreamBytes {
				t.Errorf("dict[%d]: P %d != base %d − stream %d", d.Pid, d.SavedP, d.BaseBytes, d.StreamBytes)
			}
			if d.EntryBytes <= 0 {
				t.Errorf("dict[%d]: learned entry with no serialized bytes", d.Pid)
			}
		}
	}
	if !usedOne {
		t.Error("no learned dictionary entry is used by any unit")
	}
}

// TestHotJoin is the dynamic acceptance criterion: running the
// interpreter over an example module and joining its trace with the
// static attribution yields dictionary entries and opcodes with
// nonzero dynamic counts attached to nonzero static bytes.
func TestHotJoin(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "modules", "fib.mc"))
	if err != nil {
		t.Fatal(err)
	}
	_, briscData := buildArtifacts(t, "fib.mc", string(src))
	art, err := Analyze("fib.mc", briscData)
	if err != nil {
		t.Fatal(err)
	}

	counts := map[int32]int64{}
	it := brisc.NewInterp(art.Brisc.Obj, 0, io.Discard)
	it.Trace = func(off int32) { counts[off]++ }
	rec := telemetry.New()
	it.SetRecorder(rec)
	if _, err := it.Run(0); err != nil {
		t.Fatalf("interp: %v", err)
	}
	it.FlushTelemetry()
	dispatch := map[string]int64{}
	for k, v := range rec.Counters() {
		if strings.HasPrefix(k, "brisc.interp.dispatch.") {
			dispatch[strings.TrimPrefix(k, "brisc.interp.dispatch.")] = v
		}
	}

	hr := Hot("fib.mc", art.Brisc, counts, dispatch)
	if hr.TotalDyn == 0 {
		t.Fatal("no units executed")
	}
	hotEntries := 0
	for _, e := range hr.Entries {
		if e.DynCount > 0 && e.StaticBytes > 0 {
			hotEntries++
		}
	}
	if hotEntries == 0 {
		t.Error("no dictionary entry joins nonzero dynamic count with static bytes")
	}
	joined := 0
	for _, op := range hr.Ops {
		if op.Static > 0 && op.Dispatch > 0 {
			joined++
		}
	}
	if joined == 0 {
		t.Error("no opcode joins static occurrences with dispatch counts")
	}
	if out := FormatHotString(hr); !strings.Contains(out, "density") {
		t.Error("hot report missing density table")
	}
}

// TestPublish: the telemetry view of a report must carry the headline
// gauges through a Collector sink.
func TestPublish(t *testing.T) {
	wireData, _ := buildArtifacts(t, "fib", workload.Kernels()["fib"])
	art, err := Analyze("fib", wireData)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	art.Report.Publish(rec)
	g := rec.Gauges()
	if g["attrib.wir2.total_bytes"] != float64(art.Report.TotalBytes) {
		t.Errorf("total_bytes gauge %v, want %d", g["attrib.wir2.total_bytes"], art.Report.TotalBytes)
	}
	if _, ok := g["attrib.wir2.class.metadata.bytes"]; !ok {
		t.Error("missing per-class gauge")
	}
}
