package attrib

import "math"

// order0Bits returns the order-0 (memoryless) entropy of the symbol
// sequence in bits: n·H where H = −Σ p·log2 p over the empirical
// symbol distribution — the size an ideal context-free coder
// approaches, per the paper's Huffman-stage discussion.
func order0Bits(syms []int) float64 {
	if len(syms) == 0 {
		return 0
	}
	freq := map[int]int{}
	for _, s := range syms {
		freq[s]++
	}
	n := float64(len(syms))
	bits := 0.0
	for _, c := range freq {
		p := float64(c) / n
		bits -= float64(c) * math.Log2(p)
	}
	return bits
}

// order1Bits returns the order-1 entropy in bits: each symbol charged
// −log2 p(s | prev) under the empirical bigram distribution, with the
// first symbol charged at order-0. This is the size bound for a
// one-symbol-of-context Markov coder (the model BRISC's follower
// tables approximate).
func order1Bits(syms []int) float64 {
	if len(syms) == 0 {
		return 0
	}
	if len(syms) == 1 {
		return order0Bits(syms)
	}
	bigram := map[[2]int]int{}
	ctx := map[int]int{}
	for i := 1; i < len(syms); i++ {
		bigram[[2]int{syms[i-1], syms[i]}]++
		ctx[syms[i-1]]++
	}
	bits := order0Bits(syms[:1])
	for pair, c := range bigram {
		p := float64(c) / float64(ctx[pair[0]])
		bits -= float64(c) * math.Log2(p)
	}
	return bits
}
