package attrib

import (
	"strings"
	"testing"

	"repro/internal/brisc"
	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/wire"
	"repro/internal/workload"
)

const diffBase = `
int sum(int a, int b) { return a + b; }
int main(void) {
	putint(sum(1, 2));
	return 0;
}
`

// diffGrown is diffBase plus a function stuffed with distinct 32-bit
// constants, so the CNSTI literal stream is the dominant growth.
const diffGrown = `
int sum(int a, int b) { return a + b; }
int noise(void) {
	int s = 0;
	s += 100001; s += 200003; s += 300007; s += 400009;
	s += 500011; s += 600013; s += 700019; s += 800023;
	s += 900029; s += 1000031; s += 1100033; s += 1200037;
	return s;
}
int main(void) {
	putint(sum(1, 2));
	putint(noise());
	return 0;
}
`

func wireArtifact(t *testing.T, name, src string) []byte {
	t.Helper()
	mod, err := cc.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.Compress(mod)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDiffStreamGrown: growing one literal stream must surface that
// stream at the top of the ranked delta output.
func TestDiffStreamGrown(t *testing.T) {
	oldRep, err := WireReport("base", wireArtifact(t, "base", diffBase))
	if err != nil {
		t.Fatal(err)
	}
	newRep, err := WireReport("grown", wireArtifact(t, "grown", diffGrown))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(oldRep, newRep)
	if err != nil {
		t.Fatal(err)
	}
	if d.NewTotal <= d.OldTotal {
		t.Fatalf("grown artifact not larger: %d vs %d", d.NewTotal, d.OldTotal)
	}
	// Ranked: |delta| non-increasing.
	for i := 1; i < len(d.Streams); i++ {
		if abs(d.Streams[i].D()) > abs(d.Streams[i-1].D()) {
			t.Fatalf("stream deltas not ranked: %+v before %+v", d.Streams[i-1], d.Streams[i])
		}
	}
	// The distinct-constant stream must have grown, and be the top
	// literal-stream mover.
	var cnsti *Delta
	for i := range d.Streams {
		if d.Streams[i].Name == "CNSTI" {
			cnsti = &d.Streams[i]
			break
		}
	}
	if cnsti == nil || cnsti.D() <= 0 {
		t.Fatalf("CNSTI stream did not grow: %+v", cnsti)
	}
	for _, s := range d.Streams {
		if s.Name == "CNSTI" {
			break
		}
		if s.Name != "shape" && abs(s.D()) > 0 && s.D() > cnsti.D() {
			t.Fatalf("literal stream %s outranks the grown CNSTI stream", s.Name)
		}
	}
	out := FormatDiffString(d)
	if !strings.Contains(out, "CNSTI") {
		t.Errorf("diff output does not mention the grown stream:\n%s", out)
	}
}

// TestDiffDictDropped: compressing the same program with pattern
// learning disabled must report the old artifact's learned entries as
// dropped, ranked and rendered.
func TestDiffDictDropped(t *testing.T) {
	mod, err := cc.Compile("sieve", workload.Kernels()["sieve"])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(mod, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := brisc.Compress(prog, brisc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := brisc.Compress(prog, brisc.Options{NoCombine: true, NoSpecialize: true, NoEPI: true})
	if err != nil {
		t.Fatal(err)
	}
	oldRep, err := BriscReport("full", full.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	newRep, err := BriscReport("bare", bare.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(learnedDict(oldRep.Dict)) == 0 {
		t.Skip("no patterns adopted on this input")
	}
	d, err := Diff(oldRep, newRep)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DictDropped) == 0 {
		t.Fatal("no dropped dictionary entries reported")
	}
	for i := 1; i < len(d.DictDropped); i++ {
		a := d.DictDropped[i-1].StreamBytes + d.DictDropped[i-1].EntryBytes
		b := d.DictDropped[i].StreamBytes + d.DictDropped[i].EntryBytes
		if b > a {
			t.Fatal("dropped entries not ranked by bytes")
		}
	}
	out := FormatDiffString(d)
	if !strings.Contains(out, "dict dropped:") {
		t.Errorf("diff output missing dropped entries:\n%s", out)
	}
}

// TestDiffKindMismatch: wire-vs-brisc diffs are refused.
func TestDiffKindMismatch(t *testing.T) {
	w, err := WireReport("w", wireArtifact(t, "w", diffBase))
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := cc.Compile("b", diffBase)
	prog, _ := codegen.Generate(mod, codegen.Options{})
	obj, err := brisc.Compress(prog, brisc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BriscReport("b", obj.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(w, b); err == nil {
		t.Fatal("diffing mismatched kinds succeeded")
	}
}
