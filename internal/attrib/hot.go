package attrib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/brisc"
)

// HotEntry joins one dictionary entry's static footprint with its
// dynamic execution count. Density (dispatches per static byte) is the
// ranking signal for biasing pattern selection toward hot code: a
// high-density entry earns its table bytes at run time, a zero-density
// one is pure size-only value.
type HotEntry struct {
	Pid         int     `json:"pid"`
	Pattern     string  `json:"pattern"`
	Learned     bool    `json:"learned"`
	StaticUnits int     `json:"static_units"`
	StaticBytes int     `json:"static_bytes"`
	DynCount    int64   `json:"executed"` // units executed (interpreter trace)
	Density     float64 `json:"density"`
}

// HotOp joins one VM opcode's static occurrence count with the
// interpreter's dispatch counter.
type HotOp struct {
	Name     string `json:"name"`
	Static   int64  `json:"static"`
	Dispatch int64  `json:"dispatch"`
}

// HotBlock joins one basic block's byte range in the compressed code
// stream with its dynamic execution weight (units executed inside the
// block). This is the machine-readable profile the execute-in-place
// layout pass consumes: hot-together blocks are packed onto shared
// pages (see brisc.XIPOptions.BlockCounts).
type HotBlock struct {
	Off        int32 `json:"off"`
	Bytes      int32 `json:"bytes"`
	Executions int64 `json:"executions"`
}

// HotReport is the static-times-dynamic view of one BRISC artifact.
type HotReport struct {
	Source   string     `json:"source"`
	Entries  []HotEntry `json:"entries"`        // ranked by density, then dynamic count
	Ops      []HotOp    `json:"ops"`            // ranked by dispatch count
	Blocks   []HotBlock `json:"blocks"`         // basic blocks in code order
	TotalDyn int64      `json:"units_executed"` // units executed
}

// Hot joins a BRISC inspection with runtime data: unitCounts maps code
// offsets (as delivered by Interp.Trace) to execution counts, and
// dispatch maps VM opcode names to the interpreter's per-opcode
// dispatch counters (brisc.interp.dispatch.*).
func Hot(source string, insp *brisc.Inspection, unitCounts map[int32]int64, dispatch map[string]int64) *HotReport {
	agg := map[int]*HotEntry{}
	var total int64
	for _, u := range insp.Units {
		e := agg[u.Pid]
		if e == nil {
			d := insp.Dict[u.Pid]
			e = &HotEntry{Pid: u.Pid, Pattern: d.Pattern, Learned: d.Learned}
			agg[u.Pid] = e
		}
		e.StaticUnits++
		e.StaticBytes += int(u.Len)
		n := unitCounts[u.Off]
		e.DynCount += n
		total += n
	}
	hr := &HotReport{Source: source, TotalDyn: total}
	for _, e := range agg {
		e.Density = float64(e.DynCount) / float64(e.StaticBytes)
		hr.Entries = append(hr.Entries, *e)
	}
	sort.Slice(hr.Entries, func(i, j int) bool {
		a, b := hr.Entries[i], hr.Entries[j]
		if a.Density != b.Density {
			return a.Density > b.Density
		}
		if a.DynCount != b.DynCount {
			return a.DynCount > b.DynCount
		}
		return a.Pid < b.Pid
	})
	for op, static := range staticOps(insp) {
		hr.Ops = append(hr.Ops, HotOp{Name: op, Static: static, Dispatch: dispatch[op]})
	}
	sort.Slice(hr.Ops, func(i, j int) bool {
		if hr.Ops[i].Dispatch != hr.Ops[j].Dispatch {
			return hr.Ops[i].Dispatch > hr.Ops[j].Dispatch
		}
		return hr.Ops[i].Name < hr.Ops[j].Name
	})
	if obj := insp.Obj; obj != nil {
		bc := brisc.BlockCountsFromTrace(obj, unitCounts)
		offs := make([]int32, 0, len(obj.Blocks))
		seen := map[int32]bool{}
		for _, off := range obj.Blocks {
			if !seen[off] {
				seen[off] = true
				offs = append(offs, off)
			}
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for i, off := range offs {
			end := int32(len(obj.Code))
			if i+1 < len(offs) {
				end = offs[i+1]
			}
			hr.Blocks = append(hr.Blocks, HotBlock{Off: off, Bytes: end - off, Executions: bc[off]})
		}
	}
	return hr
}

// BlockCounts flattens the per-block profile into the map
// brisc.XIPOptions.BlockCounts takes.
func (hr *HotReport) BlockCounts() map[int32]int64 {
	out := make(map[int32]int64, len(hr.Blocks))
	for _, b := range hr.Blocks {
		out[b.Off] = b.Executions
	}
	return out
}

// WriteHotJSON emits the report as indented JSON — the machine-
// readable form `compscope hot -json` produces and `briscrun -layout`
// consumes.
func WriteHotJSON(w io.Writer, hr *HotReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(hr)
}

// ParseHotJSON reads a report written by WriteHotJSON.
func ParseHotJSON(data []byte) (*HotReport, error) {
	var hr HotReport
	if err := json.Unmarshal(data, &hr); err != nil {
		return nil, fmt.Errorf("attrib: hot profile: %w", err)
	}
	return &hr, nil
}

func staticOps(insp *brisc.Inspection) map[string]int64 {
	out := map[string]int64{}
	for op, n := range insp.OpStatic {
		if n > 0 {
			out[opName(op)] = n
		}
	}
	return out
}

// FormatHot renders the joined static/dynamic ranking.
func FormatHot(w io.Writer, hr *HotReport) {
	fmt.Fprintf(w, "%s  %d units executed\n", hr.Source, hr.TotalDyn)
	fmt.Fprintf(w, "  dictionary entries by dynamic density (executions per static byte):\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  entry\tstatic units\tstatic bytes\texecuted\tdensity\tpattern\n")
	shown := 0
	for _, e := range hr.Entries {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%.2f\t%s\n",
			e.Pid, e.StaticUnits, e.StaticBytes, e.DynCount, e.Density, e.Pattern)
		if shown++; shown >= 15 {
			break
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "  opcode dispatch (static occurrences vs dynamic dispatches):\n")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  opcode\tstatic\tdispatched\n")
	shown = 0
	for _, op := range hr.Ops {
		fmt.Fprintf(tw, "  %s\t%d\t%d\n", op.Name, op.Static, op.Dispatch)
		if shown++; shown >= 15 {
			break
		}
	}
	tw.Flush()
}

// FormatHotString renders the hot report to a string.
func FormatHotString(hr *HotReport) string {
	var buf bytes.Buffer
	FormatHot(&buf, hr)
	return buf.String()
}
