package attrib

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/brisc"
)

// HotEntry joins one dictionary entry's static footprint with its
// dynamic execution count. Density (dispatches per static byte) is the
// ranking signal for biasing pattern selection toward hot code: a
// high-density entry earns its table bytes at run time, a zero-density
// one is pure size-only value.
type HotEntry struct {
	Pid         int
	Pattern     string
	Learned     bool
	StaticUnits int
	StaticBytes int
	DynCount    int64 // units executed (interpreter trace)
	Density     float64
}

// HotOp joins one VM opcode's static occurrence count with the
// interpreter's dispatch counter.
type HotOp struct {
	Name     string
	Static   int64
	Dispatch int64
}

// HotReport is the static-times-dynamic view of one BRISC artifact.
type HotReport struct {
	Source   string
	Entries  []HotEntry // ranked by density, then dynamic count
	Ops      []HotOp    // ranked by dispatch count
	TotalDyn int64      // units executed
}

// Hot joins a BRISC inspection with runtime data: unitCounts maps code
// offsets (as delivered by Interp.Trace) to execution counts, and
// dispatch maps VM opcode names to the interpreter's per-opcode
// dispatch counters (brisc.interp.dispatch.*).
func Hot(source string, insp *brisc.Inspection, unitCounts map[int32]int64, dispatch map[string]int64) *HotReport {
	agg := map[int]*HotEntry{}
	var total int64
	for _, u := range insp.Units {
		e := agg[u.Pid]
		if e == nil {
			d := insp.Dict[u.Pid]
			e = &HotEntry{Pid: u.Pid, Pattern: d.Pattern, Learned: d.Learned}
			agg[u.Pid] = e
		}
		e.StaticUnits++
		e.StaticBytes += int(u.Len)
		n := unitCounts[u.Off]
		e.DynCount += n
		total += n
	}
	hr := &HotReport{Source: source, TotalDyn: total}
	for _, e := range agg {
		e.Density = float64(e.DynCount) / float64(e.StaticBytes)
		hr.Entries = append(hr.Entries, *e)
	}
	sort.Slice(hr.Entries, func(i, j int) bool {
		a, b := hr.Entries[i], hr.Entries[j]
		if a.Density != b.Density {
			return a.Density > b.Density
		}
		if a.DynCount != b.DynCount {
			return a.DynCount > b.DynCount
		}
		return a.Pid < b.Pid
	})
	for op, static := range staticOps(insp) {
		hr.Ops = append(hr.Ops, HotOp{Name: op, Static: static, Dispatch: dispatch[op]})
	}
	sort.Slice(hr.Ops, func(i, j int) bool {
		if hr.Ops[i].Dispatch != hr.Ops[j].Dispatch {
			return hr.Ops[i].Dispatch > hr.Ops[j].Dispatch
		}
		return hr.Ops[i].Name < hr.Ops[j].Name
	})
	return hr
}

func staticOps(insp *brisc.Inspection) map[string]int64 {
	out := map[string]int64{}
	for op, n := range insp.OpStatic {
		if n > 0 {
			out[opName(op)] = n
		}
	}
	return out
}

// FormatHot renders the joined static/dynamic ranking.
func FormatHot(w io.Writer, hr *HotReport) {
	fmt.Fprintf(w, "%s  %d units executed\n", hr.Source, hr.TotalDyn)
	fmt.Fprintf(w, "  dictionary entries by dynamic density (executions per static byte):\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  entry\tstatic units\tstatic bytes\texecuted\tdensity\tpattern\n")
	shown := 0
	for _, e := range hr.Entries {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%.2f\t%s\n",
			e.Pid, e.StaticUnits, e.StaticBytes, e.DynCount, e.Density, e.Pattern)
		if shown++; shown >= 15 {
			break
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "  opcode dispatch (static occurrences vs dynamic dispatches):\n")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  opcode\tstatic\tdispatched\n")
	shown = 0
	for _, op := range hr.Ops {
		fmt.Fprintf(tw, "  %s\t%d\t%d\n", op.Name, op.Static, op.Dispatch)
		if shown++; shown >= 15 {
			break
		}
	}
	tw.Flush()
}

// FormatHotString renders the hot report to a string.
func FormatHotString(hr *HotReport) string {
	var buf bytes.Buffer
	FormatHot(&buf, hr)
	return buf.String()
}
