package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// recordTrace compresses the sample through wirec with -trace and
// returns the JSONL path.
func recordTrace(t *testing.T) string {
	t.Helper()
	src := writeSample(t)
	traceFile := filepath.Join(t.TempDir(), "run.jsonl")
	if out, code := run(t, "wirec", "-trace", traceFile, src); code != 0 {
		t.Fatalf("wirec exited %d:\n%s", code, out)
	}
	return traceFile
}

// TestTraceBuildinfoHeader: the first line of every -trace file is the
// buildinfo block, matching what /buildinfo serves.
func TestTraceBuildinfoHeader(t *testing.T) {
	traceFile := recordTrace(t)
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Type != "buildinfo" {
		t.Fatalf("first trace line is %+v, want buildinfo", events[0])
	}
	hdr := events[0]
	if hdr.Attrs["module"] != "repro" || hdr.Attrs["go_version"] == "" {
		t.Fatalf("buildinfo attrs = %v", hdr.Attrs)
	}
	if hdr.Trace == "" {
		t.Fatal("buildinfo line carries no trace id")
	}
	// Every span shares the header's trace ID.
	for _, e := range events {
		if e.Type == "span" && e.Trace != hdr.Trace {
			t.Fatalf("span %s trace %q != header %q", e.Name, e.Trace, hdr.Trace)
		}
	}
}

// TestTracescopeReportAndCritical drives the analyzer over a real
// recorded trace: the report must show pipeline stages, and critical
// must attribute the (tiny, fully instrumented) run's wall time.
func TestTracescopeReportAndCritical(t *testing.T) {
	traceFile := recordTrace(t)

	out, code := run(t, "tracescope", "report", traceFile)
	if code != 0 {
		t.Fatalf("tracescope report exited %d:\n%s", code, out)
	}
	for _, want := range []string{"wire.compress", "stage", "self", "p99", "repro"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	out, code = run(t, "tracescope", "critical", "-min-attributed", "0", traceFile)
	if code != 0 {
		t.Fatalf("tracescope critical exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "attributed to named stages:") {
		t.Errorf("critical verdict line missing:\n%s", out)
	}
}

// TestTracescopeDiffSelfIsClean: a trace diffed against itself reports
// zero deltas and exits 0.
func TestTracescopeDiffSelfIsClean(t *testing.T) {
	traceFile := recordTrace(t)
	out, code := run(t, "tracescope", "diff", traceFile, traceFile)
	if code != 0 {
		t.Fatalf("self-diff exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "verdict: ok") || strings.Contains(out, "REGRESSION") {
		t.Errorf("self-diff not clean:\n%s", out)
	}
}

// TestTracescopeGates: both exit gates must trip — an under-attributed
// trace fails critical, and a grown stage fails diff.
func TestTracescopeGates(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, lines ...string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Root with one child covering half: 50% attributed.
	sparse := write("sparse.jsonl",
		`{"type":"span","name":"root","id":1,"start_us":0,"dur_us":10000}`,
		`{"type":"span","name":"half","id":2,"parent":1,"start_us":0,"dur_us":5000}`)
	out, code := run(t, "tracescope", "critical", "-min-attributed", "95", sparse)
	if code != 1 {
		t.Fatalf("under-attributed trace exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("no FAIL verdict:\n%s", out)
	}

	oldT := write("old.jsonl",
		`{"type":"span","name":"hot","id":1,"start_us":0,"dur_us":10000}`)
	newT := write("new.jsonl",
		`{"type":"span","name":"hot","id":1,"start_us":0,"dur_us":30000}`)
	out, code = run(t, "tracescope", "diff", "-threshold", "25", "-min-dur", "1ms", oldT, newT)
	if code != 1 {
		t.Fatalf("regressed diff exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not marked:\n%s", out)
	}
}

// TestMetriclintRepoIsClean runs the naming lint the way `make check`
// does, over the real tree.
func TestMetriclintRepoIsClean(t *testing.T) {
	cmd := exec.Command(filepath.Join(tools(t), "metriclint"))
	cmd.Dir = repoRoot()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("metriclint failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "metriclint: ok") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestMetriclintCatchesViolations: bad casing and cross-package
// duplicates both exit nonzero with named violations.
func TestMetriclintCatchesViolations(t *testing.T) {
	dir := t.TempDir()
	mk := func(rel, body string) {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("a/a.go", "package a\n\nfunc f(r rec) { r.Add(\"BadName\", 1); r.Add(\"pkg.shared\", 1) }\n")
	mk("b/b.go", "package b\n\nfunc f(r rec) { r.Observe(\"pkg.shared\", 1) }\n")
	cmd := exec.Command(filepath.Join(tools(t), "metriclint"), dir)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("metriclint on bad tree: err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "BadName") ||
		!strings.Contains(string(out), "registered from 2 packages") {
		t.Fatalf("violations not reported:\n%s", out)
	}
}

// TestBenchdiffJSON: -json emits one machine-readable document whose
// verdict matches the exit code.
func TestBenchdiffJSON(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"gauges":{"bench.X.bytes":1000,"bench.Y.speedup":2.0}}`)
	worse := write("worse.json", `{"gauges":{"bench.X.bytes":1100,"bench.Y.speedup":2.0}}`)

	out, code := run(t, "benchdiff", "-json", "-threshold", "5", "-ignore", "speedup", base, worse)
	if code != 1 {
		t.Fatalf("regressed -json run exited %d, want 1:\n%s", code, out)
	}
	// stderr carries the human verdict; the document is the JSON prefix.
	docText := out[:strings.LastIndex(out, "}")+1]
	var doc struct {
		Threshold float64 `json:"threshold"`
		Regressed bool    `json:"regressed"`
		Rows      []struct {
			Metric    string `json:"metric"`
			Gated     bool   `json:"gated"`
			Regressed bool   `json:"regressed"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(docText), &doc); err != nil {
		t.Fatalf("-json output not parseable: %v\n%s", err, out)
	}
	if !doc.Regressed || doc.Threshold != 5 {
		t.Fatalf("doc verdict = %+v", doc)
	}
	found := false
	for _, r := range doc.Rows {
		switch r.Metric {
		case "bench.X.bytes":
			found = true
			if !r.Gated || !r.Regressed {
				t.Fatalf("bytes row = %+v", r)
			}
		case "bench.Y.speedup":
			if r.Gated {
				t.Fatalf("ignored metric marked gated: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("bench.X.bytes row missing")
	}
}
