package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startCompressd launches the daemon on an ephemeral port and returns
// the command handle and its base URL, scraped from the startup line.
func startCompressd(t *testing.T, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(filepath.Join(tools(t), "compressd"), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "compressd: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("startup announcement not seen: %v", sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return cmd, "http://" + addr
}

func postJSON(base, path string, body any) (*http.Response, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp, out, err
}

// TestCompressdEndToEnd: the binary serves a compress→decompress→run
// round trip and exposes its own metrics.
func TestCompressdEndToEnd(t *testing.T) {
	cmd, base := startCompressd(t)

	resp, body, err := postJSON(base, "/v1/compress", map[string]any{"source": sample})
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("compress: %v %s", err, body)
	}
	var cr struct {
		Artifact []byte  `json:"artifact"`
		Ratio    float64 `json:"ratio"`
	}
	if err := json.Unmarshal(body, &cr); err != nil || len(cr.Artifact) == 0 {
		t.Fatalf("compress response: %v %s", err, body)
	}
	// The sample source is tiny, so the artifact may well be larger
	// than the text; only the sign of the ratio is meaningful here.
	if cr.Ratio <= 0 {
		t.Errorf("implausible compression ratio %v", cr.Ratio)
	}

	resp, body, err = postJSON(base, "/v1/run", map[string]any{"artifact": cr.Artifact})
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("run: %v %s", err, body)
	}
	var rr struct {
		ExitCode int    `json:"exit_code"`
		Output   string `json:"output"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ExitCode != 0 || rr.Output != "55\n" {
		t.Fatalf("run = exit %d output %q, want 0 %q", rr.ExitCode, rr.Output, "55\n")
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"compressd_http_requests_total", "compressd_admission_in_flight"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("idle daemon did not exit cleanly on SIGTERM: %v", err)
	}
}

// TestCompressdSigtermDrain is the acceptance scenario: concurrent
// requests in flight, SIGTERM mid-flight, every in-flight request
// completes (or traps on its own limits), late requests are refused,
// and the process exits within the drain budget.
func TestCompressdSigtermDrain(t *testing.T) {
	cmd, base := startCompressd(t, "-drain-timeout", "10s")

	// Several in-flight spins that trap on their own 700ms deadlines,
	// plus real work.
	spin := map[string]any{
		"source": "int main(void) { while (1) { } return 0; }",
		"limits": map[string]any{"timeout_ms": 700},
	}
	work := map[string]any{"source": sample}
	type result struct {
		status int
		err    error
	}
	results := make(chan result, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := spin
			if i%2 == 0 {
				body = work
			}
			resp, _, err := postJSON(base, "/v1/run", body)
			if err != nil {
				results <- result{0, err}
				return
			}
			results <- result{resp.StatusCode, nil}
		}(i)
	}

	// Wait until the daemon reports requests in flight, then SIGTERM.
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		busy := false
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(body), "\n") {
				var n int
				if _, err := fmt.Sscanf(line, "compressd_admission_in_flight %d", &n); err == nil && n > 0 {
					busy = true
				}
			}
		}
		if busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never showed up in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Signal(syscall.SIGTERM)

	// Every in-flight request gets a real answer: 200 for the work,
	// 408 for the spins that trap on their deadline.
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Errorf("in-flight request dropped during drain: %v", r.err)
			continue
		}
		if r.status != 200 && r.status != 408 {
			t.Errorf("in-flight request = %d, want 200 or 408", r.status)
		}
	}

	// Late requests are refused: 503 while draining or connection
	// error once the listener is gone. They must never hang.
	resp, _, err := postJSON(base, "/v1/run", work)
	if err == nil && resp.StatusCode != 503 {
		t.Errorf("late request = %d, want 503 or refused", resp.StatusCode)
	}

	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the drain budget")
	}
}

// TestCompressdChaosSmoke: a chaos-enabled daemon under a short mixed
// workload never answers 5xx and still drains cleanly — the CLI-level
// mirror of the in-process chaos soak.
func TestCompressdChaosSmoke(t *testing.T) {
	cmd, base := startCompressd(t,
		"-chaos-seed", "11", "-chaos-corrupt", "0.5", "-chaos-latency", "0.5",
		"-chaos-max-latency", "5ms", "-chaos-trap", "0.5")

	resp, body, err := postJSON(base, "/v1/compress", map[string]any{"source": sample})
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("compress: %v %s", err, body)
	}
	var cr struct {
		Artifact []byte `json:"artifact"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 30; i++ {
		path, req := "/v1/run", map[string]any{"source": sample}
		if i%2 == 0 {
			path, req = "/v1/decompress", map[string]any{"artifact": cr.Artifact}
		}
		resp, body, err := postJSON(base, path, req)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if resp.StatusCode >= 500 {
			t.Fatalf("iteration %d: chaos surfaced %d:\n%s", i, resp.StatusCode, body)
		}
	}

	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("chaos daemon did not drain cleanly: %v", err)
	}
}
