// Package clitest builds the command-line tools and exercises them end
// to end, the way a user would.
package clitest

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// tools builds all cmd binaries once into a shared temp dir.
func tools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "codecomp-tools")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator),
			"repro/cmd/mcc", "repro/cmd/wirec", "repro/cmd/briscc",
			"repro/cmd/briscrun", "repro/cmd/experiments",
			"repro/cmd/compscope", "repro/cmd/benchdiff",
			"repro/cmd/tracescope", "repro/cmd/metriclint",
			"repro/cmd/compressd")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			_ = out
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func repoRoot() string {
	dir, _ := os.Getwd()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

const sample = `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { putint(fib(10)); return 0; }
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "app.mc")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// run executes a built tool and returns combined output.
func run(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(tools(t), name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out), code
}

func TestMccCompileAndRun(t *testing.T) {
	src := writeSample(t)
	out, code := run(t, "mcc", "-run", "-stats", src)
	if code != 0 {
		t.Fatalf("mcc exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "55\n") {
		t.Errorf("fib(10) output missing:\n%s", out)
	}
	if !strings.Contains(out, "instructions:") {
		t.Errorf("stats missing:\n%s", out)
	}
	out, code = run(t, "mcc", "-dump-ir", "-dump-asm", src)
	if code != 0 {
		t.Fatalf("dump exited %d", code)
	}
	if !strings.Contains(out, "ADDRLP") || !strings.Contains(out, "enter sp,sp,") {
		t.Errorf("dumps missing expected content:\n%s", out)
	}
}

func TestMccRejectsBadSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mc")
	if err := os.WriteFile(path, []byte("int main(void) { return x; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "mcc", path)
	if code == 0 {
		t.Errorf("bad source accepted:\n%s", out)
	}
	if !strings.Contains(out, "undeclared") {
		t.Errorf("diagnostic missing:\n%s", out)
	}
}

func TestWireRoundTripViaCLI(t *testing.T) {
	src := writeSample(t)
	obj := filepath.Join(t.TempDir(), "app.wire")
	out, code := run(t, "wirec", "-c", src, "-o", obj, "-stats")
	if code != 0 {
		t.Fatalf("wirec -c exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "final object:") {
		t.Errorf("stats missing:\n%s", out)
	}
	if !strings.Contains(out, "compression ratio:") {
		t.Errorf("ratio line missing:\n%s", out)
	}
	out, code = run(t, "wirec", "-d", obj, "-dump-ir")
	if code != 0 {
		t.Fatalf("wirec -d exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "CALLI(ADDRGP[fib])") {
		t.Errorf("reconstructed IR missing call:\n%s", out)
	}
}

func TestWireIndexedViaCLI(t *testing.T) {
	src := writeSample(t)
	obj := filepath.Join(t.TempDir(), "app.wirx")
	if out, code := run(t, "wirec", "-c", src, "-indexed", "-o", obj); code != 0 {
		t.Fatalf("indexed compress failed:\n%s", out)
	}
	out, code := run(t, "wirec", "-d", obj, "-indexed", "-func", "fib")
	if code != 0 {
		t.Fatalf("indexed load failed:\n%s", out)
	}
	if !strings.Contains(out, "loaded fib") || !strings.Contains(out, "touched") {
		t.Errorf("partial-load report missing:\n%s", out)
	}
}

func TestBriscPipelineViaCLI(t *testing.T) {
	src := writeSample(t)
	dir := t.TempDir()
	obj := filepath.Join(dir, "app.brisc")
	dict := filepath.Join(dir, "app.dict")
	out, code := run(t, "briscc", "-stats", "-o", obj, "-dict-out", dict, src)
	if code != 0 {
		t.Fatalf("briscc exited %d:\n%s", code, out)
	}
	// -stats renders through the telemetry summary sink.
	for _, want := range []string{"briscc.total_code_bytes", "briscc.native_bytes", "brisc.compress", "briscc.ratio.brisc_vs_native"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
	for _, args := range [][]string{
		{obj},
		{"-jit", obj},
		{"-cache", "-time", obj},
	} {
		out, code := run(t, "briscrun", args...)
		if code != 0 {
			t.Fatalf("briscrun %v exited %d:\n%s", args, code, out)
		}
		if !strings.Contains(out, "55\n") {
			t.Errorf("briscrun %v output missing fib(10):\n%s", args, out)
		}
		if args[0] == "-cache" {
			// -time renders through the summary sink too.
			for _, want := range []string{"briscrun.run", "brisc.interp.steps", "brisc.interp.cache.hits"} {
				if !strings.Contains(out, want) {
					t.Errorf("-time report missing %q:\n%s", want, out)
				}
			}
		}
	}
	// Recompress with the saved dictionary.
	out, code = run(t, "briscc", "-dict-in", dict, "-stats", src)
	if code != 0 {
		t.Fatalf("briscc -dict-in exited %d:\n%s", code, out)
	}
}

// TestWirecTelemetryTrace is the PR's acceptance path: a bare
// positional source file with -metrics and -trace must emit a stage
// summary and a JSONL trace whose per-stage byte counts sum to the
// measured container size.
func TestWirecTelemetryTrace(t *testing.T) {
	src := writeSample(t)
	traceFile := filepath.Join(t.TempDir(), "t.jsonl")
	out, code := run(t, "wirec", "-metrics", "-trace", traceFile, src)
	if code != 0 {
		t.Fatalf("wirec exited %d:\n%s", code, out)
	}
	for _, want := range []string{"wire.compress", "wire.patternize", "wire.compression_ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}
	var stageSum, container int64
	for _, e := range events {
		if e.Type != "span" {
			continue
		}
		switch e.Name {
		case "wire.metadata", "wire.operators", "wire.literals":
			v, ok := e.IntAttr("bytes")
			if !ok {
				t.Errorf("stage span %s has no bytes attr", e.Name)
			}
			stageSum += v
		case "wire.compress":
			if v, ok := e.IntAttr("container_bytes"); ok {
				container = v
			}
		}
	}
	if container == 0 {
		t.Fatal("no wire.compress span with container_bytes in trace")
	}
	if stageSum != container {
		t.Errorf("stage bytes sum to %d, container is %d", stageSum, container)
	}
}

func TestExperimentsQuickTable(t *testing.T) {
	out, code := run(t, "experiments", "-table", "variants", "-quick")
	if code != 0 {
		t.Fatalf("experiments exited %d:\n%s", code, out)
	}
	for _, want := range []string{"RISC", "minus both", "compressed/native"} {
		if !strings.Contains(out, want) {
			t.Errorf("variants table missing %q:\n%s", want, out)
		}
	}
}

// TestCompscopeReport: the X-ray must fully account for both artifact
// kinds compiled from source, and for a serialized artifact loaded by
// magic, and -json must emit parseable attribution gauges.
func TestCompscopeReport(t *testing.T) {
	src := writeSample(t)
	out, code := run(t, "compscope", "report", src)
	if code != 0 {
		t.Fatalf("compscope report exited %d:\n%s", code, out)
	}
	for _, want := range []string{"(wire)", "(brisc)", "100.0%", "streams", "functions"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	obj := filepath.Join(t.TempDir(), "app.wire")
	if out, code := run(t, "wirec", "-c", src, "-o", obj); code != 0 {
		t.Fatalf("wirec -c exited %d:\n%s", code, out)
	}
	jsonFile := filepath.Join(t.TempDir(), "attrib.json")
	out, code = run(t, "compscope", "report", "-json", jsonFile, obj)
	if code != 0 {
		t.Fatalf("compscope report on artifact exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "wir2 artifact") || !strings.Contains(out, "100.0%") {
		t.Errorf("artifact report incomplete:\n%s", out)
	}
	data, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-json output is not a snapshot: %v", err)
	}
	if snap.Gauges["attrib.wir2.total_bytes"] <= 0 {
		t.Errorf("missing attrib.wir2.total_bytes gauge in %v", snap.Gauges)
	}
}

// TestCompscopeDiff: diffing a program against a grown variant must
// rank the movement and report the size change.
func TestCompscopeDiff(t *testing.T) {
	oldSrc := writeSample(t)
	grown := strings.Replace(sample, "int main",
		"int pad(int x) { return x * 100003 + 900029; }\nint main", 1)
	newSrc := filepath.Join(t.TempDir(), "grown.mc")
	if err := os.WriteFile(newSrc, []byte(grown), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "compscope", "diff", oldSrc, newSrc)
	if code != 0 {
		t.Fatalf("compscope diff exited %d:\n%s", code, out)
	}
	for _, want := range []string{"total", "streams"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestCompscopeHot: the dynamic join must run the program (its output
// appears) and rank dictionary entries by execution density.
func TestCompscopeHot(t *testing.T) {
	src := writeSample(t)
	out, code := run(t, "compscope", "hot", src)
	if code != 0 {
		t.Fatalf("compscope hot exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "55") {
		t.Errorf("program output missing from hot run:\n%s", out)
	}
	for _, want := range []string{"units executed", "density", "opcode"} {
		if !strings.Contains(out, want) {
			t.Errorf("hot report missing %q:\n%s", want, out)
		}
	}
}

// TestBriscrunPagedXIP: the execute-in-place pipeline end to end —
// compile, profile with `compscope hot -json`, then run demand-paged
// with the profile-driven layout and a bounded predecode cache.
func TestBriscrunPagedXIP(t *testing.T) {
	src := writeSample(t)
	dir := t.TempDir()
	obj := filepath.Join(dir, "app.brisc")
	out, code := run(t, "briscc", "-o", obj, src)
	if code != 0 {
		t.Fatalf("briscc exited %d:\n%s", code, out)
	}
	profile := filepath.Join(dir, "hot.json")
	out, code = run(t, "compscope", "hot", "-json", profile, obj)
	if code != 0 {
		t.Fatalf("compscope hot -json exited %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	var hot struct {
		Blocks []struct {
			Off        int32 `json:"off"`
			Bytes      int32 `json:"bytes"`
			Executions int64 `json:"executions"`
		} `json:"blocks"`
		Units int64 `json:"units_executed"`
	}
	if err := json.Unmarshal(raw, &hot); err != nil {
		t.Fatalf("hot profile is not valid JSON: %v\n%s", err, raw)
	}
	if len(hot.Blocks) == 0 || hot.Units == 0 {
		t.Fatalf("hot profile missing block data: %s", raw)
	}
	var executed int64
	for _, b := range hot.Blocks {
		executed += b.Executions
	}
	if executed == 0 {
		t.Fatalf("no block recorded any executions: %s", raw)
	}

	out, code = run(t, "briscrun",
		"-paged", "-page-size", "128", "-page-cache", "2", "-layout", profile, "-time", obj)
	if code != 0 {
		t.Fatalf("briscrun -paged exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "55\n") {
		t.Errorf("paged run output missing fib(10):\n%s", out)
	}
	for _, want := range []string{"paging.xip.faults", "paging.xip.peak_resident_pages", "briscrun.run"} {
		if !strings.Contains(out, want) {
			t.Errorf("-time report missing %q:\n%s", want, out)
		}
	}
	// -paged and -jit are two different executors; asking for both is a
	// usage error, not a silent choice.
	out, code = run(t, "briscrun", "-paged", "-jit", obj)
	if code == 0 {
		t.Fatalf("briscrun -paged -jit must fail:\n%s", out)
	}
}

// TestBenchdiffGate: the regression gate must pass identical
// snapshots, fail a regressed one past the threshold, and honor
// -ignore for timing-derived metrics.
func TestBenchdiffGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"gauges":{"bench.X.bytes":1000,"bench.Y.speedup":2.0}}`)
	same := write("same.json", `{"gauges":{"bench.X.bytes":1000,"bench.Y.speedup":1.0}}`)
	worse := write("worse.json", `{"gauges":{"bench.X.bytes":1100,"bench.Y.speedup":2.0}}`)

	out, code := run(t, "benchdiff", "-threshold", "5", "-ignore", "speedup", base, same)
	if code != 0 {
		t.Fatalf("identical gated metrics exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "(ignored)") {
		t.Errorf("ignored metric not marked:\n%s", out)
	}
	out, code = run(t, "benchdiff", "-threshold", "5", "-ignore", "speedup", base, worse)
	if code != 1 {
		t.Fatalf("regressed metrics exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not marked:\n%s", out)
	}
	out, code = run(t, "benchdiff", base, worse)
	if code != 0 {
		t.Fatalf("report-only mode exited %d:\n%s", code, out)
	}
	_ = out
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command("go", "run", "./examples/quickstart")
	cmd.Dir = repoRoot()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart: %v\n%s", err, out)
	}
	for _, want := range []string{"wire format:", "BRISC object:", "BRISC JIT-compiled"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}

// TestWirecDebugAddr: a short-lived tool with -debug-addr starts its
// debug server (announced on stderr), finishes its work, and exits
// cleanly — the server must not keep the process alive.
func TestWirecDebugAddr(t *testing.T) {
	src := writeSample(t)
	obj := filepath.Join(t.TempDir(), "app.wire")
	out, code := run(t, "wirec", "-debug-addr", "127.0.0.1:0", "-c", src, "-o", obj)
	if code != 0 {
		t.Fatalf("wirec -debug-addr exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "debug: serving http://") {
		t.Fatalf("no debug-server announcement:\n%s", out)
	}
	if _, err := os.Stat(obj); err != nil {
		t.Fatalf("compressed object missing: %v", err)
	}
}

// TestBriscrunDebugAddrLiveScrape runs a long-running BRISC program
// under -debug-addr and scrapes the live endpoints mid-execution — the
// end-to-end proof of the observability plane: compile, run, curl
// /metrics while the interpreter is hot.
func TestBriscrunDebugAddrLiveScrape(t *testing.T) {
	// A program that runs long enough to scrape but is bounded by the
	// governor either way.
	loop := filepath.Join(t.TempDir(), "loop.mc")
	if err := os.WriteFile(loop, []byte(`
int main(void) { int i; i = 0; while (i < 2000000000) { i = i + 1; } return 0; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	obj := filepath.Join(t.TempDir(), "loop.brisc")
	if out, code := run(t, "briscc", "-o", obj, loop); code != 0 {
		t.Fatalf("briscc exited %d:\n%s", code, out)
	}

	cmd := exec.Command(filepath.Join(tools(t), "briscrun"),
		"-debug-addr", "127.0.0.1:0", "-sample", "50ms", "-timeout", "60s", obj)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The startup line carries the bound address.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "debug: serving http://") {
			addr = strings.TrimPrefix(line, "debug: serving ")
			addr = strings.Fields(addr)[0]
			addr = strings.TrimSuffix(addr, "/")
			break
		}
	}
	if addr == "" {
		t.Fatalf("debug-server announcement not seen: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/metrics")
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if strings.Contains(string(body), "runtime_goroutines") {
			if resp2, err := http.Get(addr + "/healthz"); err == nil {
				b2, _ := io.ReadAll(resp2.Body)
				resp2.Body.Close()
				if string(b2) != "ok\n" {
					t.Fatalf("healthz = %q", b2)
				}
				return // scraped live metrics from a running interpreter
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("never scraped sampler gauges from live process: %v", lastErr)
}

// TestBriscrunTraceOut: -trace-out writes a Perfetto-loadable Chrome
// trace with the identity triple on every span event.
func TestBriscrunTraceOut(t *testing.T) {
	src := writeSample(t)
	obj := filepath.Join(t.TempDir(), "app.brisc")
	if out, code := run(t, "briscc", "-o", obj, src); code != 0 {
		t.Fatalf("briscc exited %d:\n%s", code, out)
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if out, code := run(t, "briscrun", "-trace-out", tracePath, obj); code != 0 {
		t.Fatalf("briscrun exited %d:\n%s", code, out)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	ids := map[any]bool{}
	var spans int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
			ids[e.Args["trace_id"]] = true
			if _, ok := e.Args["span_id"]; !ok {
				t.Fatalf("span event missing span_id: %+v", e)
			}
		}
	}
	if spans == 0 || len(ids) != 1 {
		t.Fatalf("spans=%d distinct trace ids=%d, want >0 and 1", spans, len(ids))
	}
}
