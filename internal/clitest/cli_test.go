// Package clitest builds the command-line tools and exercises them end
// to end, the way a user would.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// tools builds all cmd binaries once into a shared temp dir.
func tools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "codecomp-tools")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator),
			"repro/cmd/mcc", "repro/cmd/wirec", "repro/cmd/briscc",
			"repro/cmd/briscrun", "repro/cmd/experiments")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			_ = out
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func repoRoot() string {
	dir, _ := os.Getwd()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

const sample = `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { putint(fib(10)); return 0; }
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "app.mc")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// run executes a built tool and returns combined output.
func run(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(tools(t), name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out), code
}

func TestMccCompileAndRun(t *testing.T) {
	src := writeSample(t)
	out, code := run(t, "mcc", "-run", "-stats", src)
	if code != 0 {
		t.Fatalf("mcc exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "55\n") {
		t.Errorf("fib(10) output missing:\n%s", out)
	}
	if !strings.Contains(out, "instructions:") {
		t.Errorf("stats missing:\n%s", out)
	}
	out, code = run(t, "mcc", "-dump-ir", "-dump-asm", src)
	if code != 0 {
		t.Fatalf("dump exited %d", code)
	}
	if !strings.Contains(out, "ADDRLP") || !strings.Contains(out, "enter sp,sp,") {
		t.Errorf("dumps missing expected content:\n%s", out)
	}
}

func TestMccRejectsBadSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mc")
	if err := os.WriteFile(path, []byte("int main(void) { return x; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "mcc", path)
	if code == 0 {
		t.Errorf("bad source accepted:\n%s", out)
	}
	if !strings.Contains(out, "undeclared") {
		t.Errorf("diagnostic missing:\n%s", out)
	}
}

func TestWireRoundTripViaCLI(t *testing.T) {
	src := writeSample(t)
	obj := filepath.Join(t.TempDir(), "app.wire")
	out, code := run(t, "wirec", "-c", src, "-o", obj, "-stats")
	if code != 0 {
		t.Fatalf("wirec -c exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "final object:") {
		t.Errorf("stats missing:\n%s", out)
	}
	if !strings.Contains(out, "compression ratio:") {
		t.Errorf("ratio line missing:\n%s", out)
	}
	out, code = run(t, "wirec", "-d", obj, "-dump-ir")
	if code != 0 {
		t.Fatalf("wirec -d exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "CALLI(ADDRGP[fib])") {
		t.Errorf("reconstructed IR missing call:\n%s", out)
	}
}

func TestWireIndexedViaCLI(t *testing.T) {
	src := writeSample(t)
	obj := filepath.Join(t.TempDir(), "app.wirx")
	if out, code := run(t, "wirec", "-c", src, "-indexed", "-o", obj); code != 0 {
		t.Fatalf("indexed compress failed:\n%s", out)
	}
	out, code := run(t, "wirec", "-d", obj, "-indexed", "-func", "fib")
	if code != 0 {
		t.Fatalf("indexed load failed:\n%s", out)
	}
	if !strings.Contains(out, "loaded fib") || !strings.Contains(out, "touched") {
		t.Errorf("partial-load report missing:\n%s", out)
	}
}

func TestBriscPipelineViaCLI(t *testing.T) {
	src := writeSample(t)
	dir := t.TempDir()
	obj := filepath.Join(dir, "app.brisc")
	dict := filepath.Join(dir, "app.dict")
	out, code := run(t, "briscc", "-stats", "-o", obj, "-dict-out", dict, src)
	if code != 0 {
		t.Fatalf("briscc exited %d:\n%s", code, out)
	}
	// -stats renders through the telemetry summary sink.
	for _, want := range []string{"briscc.total_code_bytes", "briscc.native_bytes", "brisc.compress", "briscc.ratio.brisc_vs_native"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
	for _, args := range [][]string{
		{obj},
		{"-jit", obj},
		{"-cache", "-time", obj},
	} {
		out, code := run(t, "briscrun", args...)
		if code != 0 {
			t.Fatalf("briscrun %v exited %d:\n%s", args, code, out)
		}
		if !strings.Contains(out, "55\n") {
			t.Errorf("briscrun %v output missing fib(10):\n%s", args, out)
		}
		if args[0] == "-cache" {
			// -time renders through the summary sink too.
			for _, want := range []string{"briscrun.run", "brisc.interp.steps", "brisc.interp.cache.hits"} {
				if !strings.Contains(out, want) {
					t.Errorf("-time report missing %q:\n%s", want, out)
				}
			}
		}
	}
	// Recompress with the saved dictionary.
	out, code = run(t, "briscc", "-dict-in", dict, "-stats", src)
	if code != 0 {
		t.Fatalf("briscc -dict-in exited %d:\n%s", code, out)
	}
}

// TestWirecTelemetryTrace is the PR's acceptance path: a bare
// positional source file with -metrics and -trace must emit a stage
// summary and a JSONL trace whose per-stage byte counts sum to the
// measured container size.
func TestWirecTelemetryTrace(t *testing.T) {
	src := writeSample(t)
	traceFile := filepath.Join(t.TempDir(), "t.jsonl")
	out, code := run(t, "wirec", "-metrics", "-trace", traceFile, src)
	if code != 0 {
		t.Fatalf("wirec exited %d:\n%s", code, out)
	}
	for _, want := range []string{"wire.compress", "wire.patternize", "wire.compression_ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}
	var stageSum, container int64
	for _, e := range events {
		if e.Type != "span" {
			continue
		}
		switch e.Name {
		case "wire.metadata", "wire.operators", "wire.literals":
			v, ok := e.IntAttr("bytes")
			if !ok {
				t.Errorf("stage span %s has no bytes attr", e.Name)
			}
			stageSum += v
		case "wire.compress":
			if v, ok := e.IntAttr("container_bytes"); ok {
				container = v
			}
		}
	}
	if container == 0 {
		t.Fatal("no wire.compress span with container_bytes in trace")
	}
	if stageSum != container {
		t.Errorf("stage bytes sum to %d, container is %d", stageSum, container)
	}
}

func TestExperimentsQuickTable(t *testing.T) {
	out, code := run(t, "experiments", "-table", "variants", "-quick")
	if code != 0 {
		t.Fatalf("experiments exited %d:\n%s", code, out)
	}
	for _, want := range []string{"RISC", "minus both", "compressed/native"} {
		if !strings.Contains(out, want) {
			t.Errorf("variants table missing %q:\n%s", want, out)
		}
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command("go", "run", "./examples/quickstart")
	cmd.Dir = repoRoot()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart: %v\n%s", err, out)
	}
	for _, want := range []string{"wire format:", "BRISC object:", "BRISC JIT-compiled"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}
