// Command mcc is the MiniC compiler driver: it compiles MiniC source to
// lcc-style tree IR, OmniVM assembly, or a runnable program.
//
// Usage:
//
//	mcc [flags] file.mc
//
//	-dump-ir     print the tree IR (the paper's textual form)
//	-dump-asm    print the OmniVM disassembly
//	-run         execute the program and print its exit code
//	-no-imm      de-tuned variant: no immediate instructions
//	-no-regdisp  de-tuned variant: no register-displacement addressing
//	-stats       print code-size statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/flatezip"
	"repro/internal/native"
	"repro/internal/vm"
)

func main() {
	dumpIR := flag.Bool("dump-ir", false, "print tree IR")
	dumpAsm := flag.Bool("dump-asm", false, "print OmniVM disassembly")
	run := flag.Bool("run", false, "execute the program")
	noImm := flag.Bool("no-imm", false, "variant: remove immediate instructions")
	noRegDisp := flag.Bool("no-regdisp", false, "variant: remove register-displacement addressing")
	optimize := flag.Bool("O", false, "run the peephole optimizer")
	stats := flag.Bool("stats", false, "print code-size statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := cc.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(mod.String())
	}
	prog, err := codegen.Generate(mod, codegen.Options{
		NoImmediates: *noImm,
		NoRegDisp:    *noRegDisp,
	})
	if err != nil {
		fatal(err)
	}
	if *optimize {
		prog = codegen.Peephole(prog)
	}
	if *dumpAsm {
		fmt.Print(prog.Disassemble())
	}
	if *stats {
		fixed := native.FixedSize(prog.Code)
		variable := native.VariableSize(prog.Code)
		gz := len(flatezip.Compress(native.EncodeVariable(prog.Code)))
		fmt.Printf("instructions:        %d\n", len(prog.Code))
		fmt.Printf("fixed (SPARC-like):  %d bytes\n", fixed)
		fmt.Printf("variable (x86-like): %d bytes\n", variable)
		fmt.Printf("gzipped variable:    %d bytes\n", gz)
	}
	if *run {
		m := vm.NewMachine(prog, 0, os.Stdout)
		code, err := m.Run(0)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "exit %d (%d instructions)\n", code, m.Steps)
		os.Exit(int(code))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcc:", err)
	os.Exit(1)
}
