// Command mcc is the MiniC compiler driver: it compiles MiniC source to
// lcc-style tree IR, OmniVM assembly, or a runnable program.
//
// Usage:
//
//	mcc [flags] file.mc
//
//	-dump-ir     print the tree IR (the paper's textual form)
//	-dump-asm    print the OmniVM disassembly
//	-run         execute the program and print its exit code
//	-no-imm      de-tuned variant: no immediate instructions
//	-no-regdisp  de-tuned variant: no register-displacement addressing
//	-stats       print code-size statistics
//	-max-steps   abort -run after this many executed instructions
//	-timeout     abort -run after this wall-clock duration (e.g. 2s)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/flatezip"
	"repro/internal/guard"
	"repro/internal/native"
	"repro/internal/telemetry/expose"
	"repro/internal/vm"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

func main() {
	dumpIR := flag.Bool("dump-ir", false, "print tree IR")
	dumpAsm := flag.Bool("dump-asm", false, "print OmniVM disassembly")
	run := flag.Bool("run", false, "execute the program")
	noImm := flag.Bool("no-imm", false, "variant: remove immediate instructions")
	noRegDisp := flag.Bool("no-regdisp", false, "variant: remove register-displacement addressing")
	optimize := flag.Bool("O", false, "run the peephole optimizer")
	stats := flag.Bool("stats", false, "print code-size statistics")
	maxSteps := flag.Int64("max-steps", 0, "abort -run after executing this many instructions (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort -run after this wall-clock duration, e.g. 2s (0 = unlimited)")
	workers := flag.Int("workers", 0, "cap runtime parallelism (GOMAXPROCS); 0 = one per CPU")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var err error
	tool, err = obs.Start()
	if err != nil {
		fatal(err)
	}
	rec := tool.Rec

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	sp := rec.StartSpan("mcc.frontend")
	mod, err := cc.Compile(flag.Arg(0), string(src))
	sp.End()
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(mod.String())
	}
	sp = rec.StartSpan("mcc.codegen")
	prog, err := codegen.Generate(mod, codegen.Options{
		NoImmediates: *noImm,
		NoRegDisp:    *noRegDisp,
	})
	sp.End()
	if err != nil {
		fatal(err)
	}
	if *optimize {
		prog = codegen.Peephole(prog)
	}
	if *dumpAsm {
		fmt.Print(prog.Disassemble())
	}
	if *stats {
		fixed := native.FixedSize(prog.Code)
		variable := native.VariableSize(prog.Code)
		gz := len(flatezip.Compress(native.EncodeVariable(prog.Code)))
		fmt.Printf("instructions:        %d\n", len(prog.Code))
		fmt.Printf("fixed (SPARC-like):  %d bytes\n", fixed)
		fmt.Printf("variable (x86-like): %d bytes\n", variable)
		fmt.Printf("gzipped variable:    %d bytes\n", gz)
	}
	if *run {
		limits := guard.Limits{MaxSteps: *maxSteps}
		if *timeout > 0 {
			limits = limits.WithTimeout(*timeout)
		}
		m := vm.NewMachine(prog, 0, os.Stdout)
		m.SetRecorder(rec)
		if err := m.SetLimits(limits); err != nil {
			fatal(err)
		}
		sp = rec.StartSpan("mcc.run")
		code, err := m.Run(0)
		sp.End()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "exit %d (%d instructions)\n", code, m.Steps)
		if err := tool.Close(); err != nil {
			fatal(err)
		}
		os.Exit(int(code))
	}
	if err := tool.Close(); err != nil {
		fatal(err)
	}
}

// fatal trips the flight recorder and flushes traces/metrics before
// exiting, so governor trap counters reach the summary when a limit
// kills the run.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcc:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
