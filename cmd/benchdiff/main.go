// Command benchdiff compares two telemetry JSON snapshots (the
// BENCH_pipeline.json format written by `make bench` and the
// experiments harness) and reports per-metric deltas, ranked by
// relative change. With -threshold it exits nonzero when any compared
// metric moved past the limit — the regression gate `make check` runs
// against the committed baseline.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 5 -ignore 'speedup' baseline.json current.json
//	benchdiff -only 'bench.BenchmarkWire' old.json new.json
//	benchdiff -json -threshold 5 old.json new.json > diff.json
//
// -only restricts the comparison to metrics whose names match the
// regexp (the mirror of -ignore), and a geometric-mean summary of the
// relative changes is printed after the table. -json replaces the
// human-readable table with one machine-readable JSON document (rows,
// geomean, verdict) on stdout — the format `make trace-check` records
// as its CI artifact; the exit code still reflects the threshold.
//
// Timing-derived metrics (wall-clock speedups, span durations) are
// machine-dependent and should be excluded from gating via -ignore;
// byte counts and other size metrics are deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"text/tabwriter"

	"repro/internal/telemetry"
	"repro/internal/telemetry/expose"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

type row struct {
	key      string
	old, new float64
	pct      float64 // relative change in percent; NaN when old == 0
}

// jsonRow and jsonDoc are the -json output shape. Pct is omitted for
// appeared-from-zero metrics (NaN has no JSON encoding).
type jsonRow struct {
	Metric    string   `json:"metric"`
	Old       float64  `json:"old"`
	New       float64  `json:"new"`
	Pct       *float64 `json:"pct,omitempty"`
	Gated     bool     `json:"gated"`
	Regressed bool     `json:"regressed,omitempty"`
}

type jsonDoc struct {
	Old        string    `json:"old"`
	New        string    `json:"new"`
	Threshold  float64   `json:"threshold"`
	Regressed  bool      `json:"regressed"`
	GeomeanPct *float64  `json:"geomean_pct,omitempty"`
	Rows       []jsonRow `json:"rows"`
	OnlyOld    []string  `json:"only_old,omitempty"`
	OnlyNew    []string  `json:"only_new,omitempty"`
}

func main() {
	threshold := flag.Float64("threshold", 0, "exit nonzero if any compared metric changes by more than this percent (0 = report only)")
	ignore := flag.String("ignore", "", "regexp of metric names to exclude from gating (still reported)")
	only := flag.String("only", "", "regexp of metric names to compare; everything else is dropped")
	jsonOut := flag.Bool("json", false, "write one machine-readable JSON document to stdout instead of the table")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-ignore regexp] [-only regexp] old.json new.json")
		os.Exit(2)
	}
	var terr error
	tool, terr = obs.Start()
	if terr != nil {
		fatal(terr)
	}
	defer tool.Close()
	var ignoreRe *regexp.Regexp
	if *ignore != "" {
		var err error
		if ignoreRe, err = regexp.Compile(*ignore); err != nil {
			fatal(fmt.Errorf("bad -ignore: %w", err))
		}
	}
	var onlyRe *regexp.Regexp
	if *only != "" {
		var err error
		if onlyRe, err = regexp.Compile(*only); err != nil {
			fatal(fmt.Errorf("bad -only: %w", err))
		}
	}
	oldSnap := readSnapshot(flag.Arg(0))
	newSnap := readSnapshot(flag.Arg(1))

	oldM := metrics(oldSnap)
	newM := metrics(newSnap)
	if onlyRe != nil {
		for k := range oldM {
			if !onlyRe.MatchString(k) {
				delete(oldM, k)
			}
		}
		for k := range newM {
			if !onlyRe.MatchString(k) {
				delete(newM, k)
			}
		}
	}
	var rows []row
	var onlyOld, onlyNew []string
	for k, ov := range oldM {
		nv, ok := newM[k]
		if !ok {
			onlyOld = append(onlyOld, k)
			continue
		}
		r := row{key: k, old: ov, new: nv}
		switch {
		case ov == nv:
			r.pct = 0
		case ov == 0:
			r.pct = math.NaN()
		default:
			r.pct = 100 * (nv - ov) / math.Abs(ov)
		}
		rows = append(rows, r)
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := rankMag(rows[i].pct), rankMag(rows[j].pct)
		if ai != aj {
			return ai > aj
		}
		return rows[i].key < rows[j].key
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	// Gate first, render second, so the table and the -json document
	// share one verdict.
	failed := false
	gatedOf := make([]bool, len(rows))
	regOf := make([]bool, len(rows))
	for i, r := range rows {
		gatedOf[i] = ignoreRe == nil || !ignoreRe.MatchString(r.key)
		if *threshold > 0 && gatedOf[i] && rankMag(r.pct) > *threshold {
			regOf[i] = true
			failed = true
		}
	}
	// Geometric mean of the new/old ratios across every compared metric
	// with well-defined logs — the one-line "did this change move the
	// suite" summary.
	var logSum float64
	var logN int
	for _, r := range rows {
		if r.old > 0 && r.new > 0 {
			logSum += math.Log(r.new / r.old)
			logN++
		}
	}
	if *jsonOut {
		doc := jsonDoc{
			Old: flag.Arg(0), New: flag.Arg(1),
			Threshold: *threshold, Regressed: failed,
			OnlyOld: onlyOld, OnlyNew: onlyNew,
			Rows: make([]jsonRow, 0, len(rows)),
		}
		if logN > 0 {
			g := 100 * (math.Exp(logSum/float64(logN)) - 1)
			doc.GeomeanPct = &g
		}
		for i, r := range rows {
			jr := jsonRow{Metric: r.key, Old: r.old, New: r.new, Gated: gatedOf[i], Regressed: regOf[i]}
			if !math.IsNaN(r.pct) {
				pct := r.pct
				jr.Pct = &pct
			}
			doc.Rows = append(doc.Rows, jr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	} else {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "metric\told\tnew\tdelta\n")
		for i, r := range rows {
			mark := ""
			if regOf[i] {
				mark = "  REGRESSION"
			}
			if !gatedOf[i] {
				mark = "  (ignored)"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s%s\n", r.key, num(r.old), num(r.new), pctStr(r.pct), mark)
		}
		tw.Flush()
		if logN > 0 {
			fmt.Printf("geomean: %+.2f%% across %d metrics\n", 100*(math.Exp(logSum/float64(logN))-1), logN)
		}
		for _, k := range onlyOld {
			fmt.Printf("only in %s: %s\n", flag.Arg(0), k)
		}
		for _, k := range onlyNew {
			fmt.Printf("only in %s: %s\n", flag.Arg(1), k)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: metrics moved more than %.1f%% against %s\n", *threshold, flag.Arg(0))
		tool.Close()
		os.Exit(1)
	}
}

// rankMag is the ranking/gating magnitude of a relative change: NaN
// (appeared from zero) ranks and gates as infinite.
func rankMag(pct float64) float64 {
	if math.IsNaN(pct) {
		return math.Inf(1)
	}
	return math.Abs(pct)
}

func pctStr(pct float64) string {
	if math.IsNaN(pct) {
		return "new!=0"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// metrics folds a snapshot's gauges and counters into one namespace
// (they never collide: the recorder keys them separately by
// convention).
func metrics(s telemetry.Snapshot) map[string]float64 {
	out := make(map[string]float64, len(s.Gauges)+len(s.Counters))
	for k, v := range s.Counters {
		out[k] = float64(v)
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	return out
}

func readSnapshot(path string) telemetry.Snapshot {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return snap
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
