// Command metriclint enforces the repository's telemetry naming
// contract: every literal metric name passed to Recorder.Add,
// Recorder.SetGauge, or Recorder.Observe must be lowercase dotted
// (`pkg.metric` or deeper, [a-z0-9_] segments), and no literal name
// may be registered from more than one package — duplicate names make
// aggregate snapshots ambiguous and break benchdiff comparisons.
//
// Dynamically built names (fmt.Sprintf, "prefix"+var) cannot be
// checked statically and are skipped; test files are exempt (they
// exercise the recorder with throwaway names).
//
// Usage:
//
//	metriclint [dir ...]    (default: ./cmd ./internal)
//
// Exits nonzero and lists every violation when the contract is
// broken.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// nameRE is the contract: at least two lowercase dotted segments.
var nameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)+$`)

// metricMethods are the Recorder registration points whose first
// argument is the metric name.
var metricMethods = map[string]bool{"Add": true, "SetGauge": true, "Observe": true}

type site struct {
	pos  token.Position
	pkg  string // directory, the package identity
	name string
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./cmd", "./internal"}
	}
	var sites []site
	var parseErrs []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fset := token.NewFileSet()
			f, perr := parser.ParseFile(fset, path, nil, 0)
			if perr != nil {
				parseErrs = append(parseErrs, perr.Error())
				return nil
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !metricMethods[sel.Sel.Name] {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true // dynamic name: out of static reach
				}
				name, uerr := strconv.Unquote(lit.Value)
				if uerr != nil {
					return true
				}
				sites = append(sites, site{
					pos:  fset.Position(lit.Pos()),
					pkg:  filepath.Dir(path),
					name: name,
				})
				return true
			})
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(1)
		}
	}
	if len(parseErrs) > 0 {
		for _, e := range parseErrs {
			fmt.Fprintf(os.Stderr, "metriclint: parse: %s\n", e)
		}
		os.Exit(1)
	}

	var violations []string
	byName := map[string]map[string]bool{} // name -> set of packages
	for _, s := range sites {
		if !nameRE.MatchString(s.name) {
			violations = append(violations,
				fmt.Sprintf("%s: metric name %q is not lowercase dotted", s.pos, s.name))
		}
		if byName[s.name] == nil {
			byName[s.name] = map[string]bool{}
		}
		byName[s.name][s.pkg] = true
	}
	for name, pkgs := range byName {
		if len(pkgs) < 2 {
			continue
		}
		list := make([]string, 0, len(pkgs))
		for p := range pkgs {
			list = append(list, p)
		}
		sort.Strings(list)
		violations = append(violations,
			fmt.Sprintf("metric name %q registered from %d packages: %s",
				name, len(list), strings.Join(list, ", ")))
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "metriclint:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("metriclint: ok (%d literal metric names across %d sites)\n", len(byName), len(sites))
}
