// Command wirec compresses MiniC programs with the paper's wire format
// and decompresses wire objects back to tree IR.
//
// Usage:
//
//	wirec -c file.mc -o file.wire      compress source
//	wirec file.mc                      shorthand for -c file.mc
//	wirec -d file.wire [-dump-ir]      decompress (and optionally dump)
//	wirec -c file.mc -stats            per-stage size report
//	wirec -c file.mc -no-mtf|-no-huff|-final=lz|arith|none   ablations
//
// Robustness (untrusted objects):
//
//	-timeout d     abandon -d after wall-clock duration d (e.g. 2s)
//	-max-bytes n   reject objects whose declared container size exceeds n
//
// Observability (shared across the tools):
//
//	-metrics             per-stage telemetry summary on stderr
//	-trace file.jsonl    machine-readable span/counter trace
//	-trace-out f.json    Chrome trace_event trace (load in Perfetto)
//	-debug-addr a:p      live debug endpoints (/metrics, /snapshot, /spans, /flight, /debug/pprof)
//	-sample d            runtime sampler interval
//	-cpuprofile f.pprof  CPU profile
//	-memprofile f.pprof  heap profile
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cc"
	"repro/internal/telemetry/expose"
	"repro/internal/wire"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

func main() {
	compress := flag.String("c", "", "MiniC source to compress")
	decompress := flag.String("d", "", "wire object to decompress")
	out := flag.String("o", "", "output path")
	dumpIR := flag.Bool("dump-ir", false, "print reconstructed tree IR after -d")
	stats := flag.Bool("stats", false, "print per-stage sizes")
	noMTF := flag.Bool("no-mtf", false, "ablation: skip move-to-front")
	noHuff := flag.Bool("no-huff", false, "ablation: skip Huffman coding")
	final := flag.String("final", "lz", "final stage: lz, arith, none")
	indexed := flag.Bool("indexed", false, "function-at-a-time random-access format")
	fn := flag.String("func", "", "with -d on an indexed object: load only this function")
	maxBytes := flag.Uint64("max-bytes", 0, "cap the declared decompressed container size in bytes (0 = keep the 1 GiB default)")
	timeout := flag.Duration("timeout", 0, "abort -d after this wall-clock duration, e.g. 2s (0 = unlimited)")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU, 1 = serial; output is identical either way")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()
	// A bare positional source file means -c.
	if *compress == "" && *decompress == "" && flag.NArg() == 1 {
		*compress = flag.Arg(0)
	}

	var err error
	tool, err = obs.Start()
	if err != nil {
		fatal(err)
	}
	rec := tool.Rec
	metrics := obs.Metrics

	opt := wire.Options{NoMTF: *noMTF, NoHuffman: *noHuff, Workers: *workers}
	switch *final {
	case "lz":
		opt.Final = wire.FinalLZ
	case "arith":
		opt.Final = wire.FinalArith
	case "none":
		opt.Final = wire.FinalNone
	default:
		fatal(fmt.Errorf("unknown -final %q", *final))
	}

	switch {
	case *compress != "":
		src, err := os.ReadFile(*compress)
		if err != nil {
			fatal(err)
		}
		sp := rec.StartSpan("wire.frontend")
		mod, err := cc.Compile(*compress, string(src))
		sp.End()
		if err != nil {
			fatal(err)
		}
		var data []byte
		var st wire.Stats
		if *indexed {
			data, err = wire.CompressIndexedTraced(mod, opt, rec)
		} else {
			// One traced build serves -stats, -o, and stdout alike.
			st, data, err = wire.MeasureTraced(mod, opt, rec)
		}
		if err != nil {
			fatal(err)
		}
		if rec.Enabled() && !*indexed {
			rec.SetGauge("wire.compression_ratio",
				float64(st.ContainerBytes)/float64(st.FinalBytes))
		}
		if *stats && !*indexed {
			fmt.Printf("trees:            %d (%d distinct shapes)\n", st.Trees, st.Shapes)
			fmt.Printf("metadata:         %d bytes\n", st.MetadataBytes)
			fmt.Printf("operator streams: %d bytes\n", st.OperatorBytes)
			fmt.Printf("literal streams:  %d bytes\n", st.LiteralBytes)
			fmt.Printf("container:        %d bytes\n", st.ContainerBytes)
			fmt.Printf("final object:     %d bytes\n", st.FinalBytes)
			fmt.Printf("compression ratio: %.2f (container/final)\n",
				float64(st.ContainerBytes)/float64(st.FinalBytes))
		}
		if *out != "" {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(data))
		} else if !*stats && !*metrics {
			if _, err := os.Stdout.Write(data); err != nil {
				fatal(err)
			}
		}
	case *decompress != "":
		if *maxBytes > 0 {
			wire.MaxContainerBytes = *maxBytes
		}
		data, err := os.ReadFile(*decompress)
		if err != nil {
			fatal(err)
		}
		err = guardWall(*timeout, func() error {
			if *indexed {
				r, err := wire.OpenIndexed(data)
				if err != nil {
					return err
				}
				r.Rec = rec
				if *fn != "" {
					f, err := r.LoadFunction(*fn)
					if err != nil {
						return err
					}
					if *dumpIR {
						for _, t := range f.Trees {
							fmt.Println(t)
						}
					}
					fmt.Fprintf(os.Stderr, "loaded %s: %d trees, touched %d of %d bytes\n",
						*fn, len(f.Trees), r.BytesTouched, len(data))
					return nil
				}
				mod, err := r.LoadAll()
				if err != nil {
					return err
				}
				if *dumpIR {
					fmt.Print(mod.String())
				}
				fmt.Fprintf(os.Stderr, "decompressed %s: %d functions\n", mod.Name, len(mod.Functions))
				return nil
			}
			mod, err := wire.DecompressParallel(data, *workers, rec)
			if err != nil {
				return err
			}
			if *dumpIR {
				fmt.Print(mod.String())
			} else {
				fmt.Fprintf(os.Stderr, "decompressed %s: %d functions, %d trees, %d globals\n",
					mod.Name, len(mod.Functions), mod.NumTrees(), len(mod.Globals))
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: wirec -c file.mc [-o out.wire] | wirec -d file.wire")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := tool.Close(); err != nil {
		fatal(err)
	}
}

// guardWall runs f under the -timeout wall-clock watchdog. A hostile
// wire object must not hang the tool, so on expiry the decode is
// abandoned (the process is about to exit; the goroutine dies with it).
func guardWall(d time.Duration, f func() error) error {
	if d <= 0 {
		return f()
	}
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("decode exceeded -timeout %s", d)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wirec:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
