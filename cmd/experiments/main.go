// Command experiments regenerates the paper's evaluation: every table
// plus the headline measurements. See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for the recorded paper-vs-measured results.
//
// Usage:
//
//	experiments -table all            everything (slow: minutes)
//	experiments -table wire           §3 wire-code table (T1)
//	experiments -table brisc          §4 BRISC results table (T2)
//	experiments -table variants       §5 abstract-machine variants (T3)
//	experiments -table example        §4 salt() worked example (F1)
//	experiments -table workingset     working-set reduction (S3)
//	experiments -table paging         intro paging scenario (S4)
//	experiments -table penalty        interpretation penalty (S1)
//	experiments -table xip            execute-in-place fault/miss sweep (X1)
//	experiments -table batch          batch-compress the corpus through the shared pool
//	experiments -quick                skip the slow timing columns
//	experiments -workers N            worker pool size for -table batch (0 = one per CPU)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/expose"
	"repro/internal/workload"
)

// tool is the process observability state; fatal paths trip its flight
// recorder and flush it before exit.
var tool *expose.Tool

func main() {
	table := flag.String("table", "all", "which experiment to run")
	quick := flag.Bool("quick", false, "skip slow timing measurements")
	workers := flag.Int("workers", 0, "worker pool size for -table batch: 0 = one per CPU, 1 = serial")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()

	var terr error
	tool, terr = obs.Start()
	if terr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", terr)
		os.Exit(1)
	}
	rec := tool.Rec
	if *metricsOut != "" && rec == nil {
		rec = telemetry.New()
	}
	experiments.SetRecorder(rec)

	var err error
	switch *table {
	case "all":
		err = experiments.RunAll(os.Stdout, *quick)
	case "wire":
		var rows []experiments.WireRow
		if rows, err = experiments.WireTable(); err == nil {
			fmt.Print(experiments.FormatWireTable(rows))
		}
	case "brisc":
		var rows []experiments.BriscRow
		if rows, err = experiments.BriscTable(!*quick); err == nil {
			fmt.Print(experiments.FormatBriscTable(rows))
		}
	case "variants":
		profile := workload.Gcc
		if *quick {
			profile = workload.Wep
		}
		var rows []experiments.VariantRow
		if rows, err = experiments.VariantsTable(profile); err == nil {
			fmt.Print(experiments.FormatVariantsTable(rows))
		}
	case "example":
		var r experiments.SaltResult
		if r, err = experiments.SaltExample(); err == nil {
			fmt.Print(experiments.FormatSaltExample(r))
		}
	case "workingset":
		profiles := []workload.Profile{workload.Wep, workload.Lcc}
		if !*quick {
			profiles = append(profiles, workload.Gcc)
		}
		var rows []experiments.WorkingSetResult
		for _, p := range profiles {
			var r experiments.WorkingSetResult
			if r, err = experiments.WorkingSet(p); err != nil {
				break
			}
			rows = append(rows, r)
		}
		if err == nil {
			fmt.Print(experiments.FormatWorkingSet(rows))
		}
	case "paging":
		var rows []experiments.PagingRow
		if rows, err = experiments.PagingScenario(workload.Lcc, 12); err == nil {
			fmt.Print(experiments.FormatPaging("lcc-sweep", rows))
		}
	case "penalty":
		var rows []experiments.PenaltyRow
		if rows, err = experiments.InterpPenalty(); err == nil {
			fmt.Print(experiments.FormatPenalty(rows))
		}
	case "xip":
		var rows []experiments.XIPRow
		if rows, err = experiments.XIPTable(workload.Wep); err == nil {
			fmt.Print(experiments.FormatXIP(workload.Wep.Name, rows))
		}
	case "profile":
		var r experiments.CallProfileResult
		if r, err = experiments.CallProfile(workload.Lcc); err == nil {
			fmt.Print(experiments.FormatCallProfile(r))
		}
	case "batch":
		var inputs []experiments.BatchInput
		if inputs, err = experiments.CompileCorpus(); err == nil {
			start := time.Now()
			var results []experiments.BatchResult
			if results, err = experiments.BatchCompress(inputs, *workers); err == nil {
				fmt.Print(experiments.FormatBatch(results))
				fmt.Printf("%d modules in %v (workers=%d)\n", len(results), time.Since(start).Round(time.Millisecond), *workers)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown table %q\n", *table)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		// Trip the flight recorder and flush any trace/metrics gathered
		// before the failure.
		tool.Fail("fatal: " + err.Error())
		os.Exit(1)
	}
	if *metricsOut != "" {
		f, ferr := os.Create(*metricsOut)
		if ferr == nil {
			ferr = telemetry.WriteJSON(f, rec)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", ferr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics %s\n", *metricsOut)
	}
	if cerr := tool.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", cerr)
		os.Exit(1)
	}
}
