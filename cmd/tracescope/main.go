// Command tracescope is the trace X-ray: the offline analyzer for the
// JSONL telemetry traces every tool records with -trace. Where
// compscope accounts for every byte of an artifact, tracescope
// accounts for every microsecond of a run: per-stage self vs child
// time with duration quantiles, the critical path through the
// parallel fan-out with an unattributed residual, and stage-by-stage
// diffs of two traces with a regression verdict.
//
// Usage:
//
//	tracescope report   [flags] trace.jsonl       per-stage table (count, total, self, p50/p90/p99, attrs)
//	tracescope critical [flags] trace.jsonl       critical-path attribution; exits nonzero when the
//	                                              attributed share falls below -min-attributed
//	tracescope diff     [flags] old.jsonl new.jsonl
//	                                              per-stage deltas; exits nonzero on regression
//
// Flags:
//
//	-min-attributed pct  critical: minimum percent of wall time that must land
//	                     in named leaf stages (default 95; 0 disables the gate)
//	-threshold pct       diff: relative growth a stage total may show before it
//	                     counts as a regression (default 25; 0 = report only)
//	-min-dur d           diff: stages whose new total is below this floor never
//	                     regress — absolute noise guard (default 1ms)
//
// The shared observability flags (-trace, -metrics, -debug-addr, ...)
// are also accepted, so tracescope can trace itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/telemetry/expose"
	"repro/internal/tracescope"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet("tracescope "+mode, flag.ExitOnError)
	minAttributed := fs.Float64("min-attributed", 95, "critical: minimum percent of wall time attributed to named stages (0 disables the gate)")
	threshold := fs.Float64("threshold", 25, "diff: exit nonzero when a stage total grows by more than this percent (0 = report only)")
	minDur := fs.Duration("min-dur", time.Millisecond, "diff: stages with a new total below this floor never regress")
	obs := expose.AddFlags(fs)
	switch mode {
	case "report", "critical", "diff":
	default:
		usage()
	}
	fs.Parse(os.Args[2:])

	var err error
	tool, err = obs.Start()
	if err != nil {
		fatal(err)
	}
	defer tool.Close()

	switch mode {
	case "report":
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: tracescope report [flags] trace.jsonl")
			exit(2)
		}
		t := parse(fs.Arg(0))
		tracescope.WriteReport(os.Stdout, t)
	case "critical":
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: tracescope critical [flags] trace.jsonl")
			exit(2)
		}
		t := parse(fs.Arg(0))
		tracescope.WriteCritical(os.Stdout, t, *minAttributed)
		if c := t.CriticalPath(); *minAttributed > 0 && c.AttributedPct() < *minAttributed {
			fmt.Fprintf(os.Stderr, "tracescope: only %.1f%% of wall time attributed (floor %.1f%%)\n",
				c.AttributedPct(), *minAttributed)
			exit(1)
		}
	case "diff":
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: tracescope diff [flags] old.jsonl new.jsonl")
			exit(2)
		}
		oldT, newT := parse(fs.Arg(0)), parse(fs.Arg(1))
		res := tracescope.Diff(oldT, newT, *threshold, *minDur)
		tracescope.WriteDiff(os.Stdout, fs.Arg(0), fs.Arg(1), res, *threshold, *minDur)
		if res.Regressed {
			fmt.Fprintf(os.Stderr, "tracescope: stage totals regressed past %.1f%% against %s\n",
				*threshold, fs.Arg(0))
			exit(1)
		}
	}
}

func parse(path string) *tracescope.Trace {
	t, err := tracescope.ParseFile(path)
	if err != nil {
		fatal(err)
	}
	return t
}

// exit closes the tool (flushing any trace of tracescope itself)
// before terminating.
func exit(code int) {
	tool.Close()
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracescope report   [flags] trace.jsonl
  tracescope critical [flags] trace.jsonl
  tracescope diff     [flags] old.jsonl new.jsonl`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracescope:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
