// Command compressd serves the compression pipelines as a
// fault-tolerant HTTP/JSON daemon: compile-and-compress, decompress,
// and run-under-limits, with admission control in front of the shared
// worker pool, per-request deadlines folded into the resource
// governor, a typed error surface, and graceful drain on SIGTERM.
//
// Usage:
//
//	compressd [-addr :8717] [flags]
//
// Endpoints:
//
//	POST /v1/compress    {"source": "...", "format": "wire|brisc"}
//	POST /v1/decompress  {"artifact": <base64>, "format": "wire|brisc", "dump_ir": true}
//	POST /v1/run         {"source"|"artifact": ..., "engine": "vm|brisc|jit",
//	                      "limits": {"max_steps": n, "timeout_ms": n, ...}}
//	GET  /metrics        Prometheus exposition (compressd_* series)
//	GET  /healthz        liveness       GET /readyz   readiness (503 while draining)
//
// Robustness:
//
//	-request-timeout d   per-request wall-clock ceiling (also the default deadline)
//	-max-steps n         per-request step ceiling (clients may tighten, not exceed)
//	-max-mem n           per-request engine memory ceiling in bytes
//	-max-inflight n      admission: concurrent requests (0 = 2x workers)
//	-max-queue n         admission: bounded wait queue (0 = 4x inflight)
//	-max-est-mem n       admission: summed memory-estimate watermark (0 = off)
//	-retry-after d       backoff hint on 429/503 responses
//	-drain-timeout d     graceful-drain budget after SIGTERM
//
// Chaos (deterministic fault injection; for soak tests and CI):
//
//	-chaos-seed n        seed for every injection decision
//	-chaos-corrupt p     probability an artifact is corrupted before decode
//	-chaos-latency p     probability a request is delayed
//	-chaos-trap p        probability a run's deadline is forced to expire
//
// Observability: the shared flags (-metrics, -trace, -trace-out,
// -debug-addr, -sample, -cpuprofile, -memprofile). The daemon always
// keeps a live recorder so /metrics is populated even with no flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/compressd"
	"repro/internal/guard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/expose"
)

func main() {
	addr := flag.String("addr", ":8717", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU")
	requestTimeout := flag.Duration("request-timeout", compressd.DefaultRequestTimeout, "per-request wall-clock ceiling")
	maxSteps := flag.Int64("max-steps", compressd.DefaultMaxSteps, "per-request executed-instruction ceiling")
	maxMem := flag.Int("max-mem", compressd.DefaultMaxMem, "per-request engine memory ceiling in bytes")
	maxDepth := flag.Int("max-depth", compressd.DefaultMaxCallDepth, "per-request call-depth ceiling")
	maxBody := flag.Int64("max-body", compressd.DefaultMaxBodyBytes, "request body cap in bytes")
	maxInflight := flag.Int("max-inflight", 0, "admission: concurrent requests (0 = 2x workers)")
	maxQueue := flag.Int("max-queue", 0, "admission: bounded wait-queue depth (0 = 4x inflight)")
	maxEstMem := flag.Int64("max-est-mem", 0, "admission: summed memory-estimate watermark in bytes (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint attached to 429/503 responses")
	drainTimeout := flag.Duration("drain-timeout", compressd.DefaultDrainTimeout, "graceful-drain budget after SIGTERM")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos: seed for deterministic fault injection")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "chaos: artifact-corruption probability [0,1]")
	chaosLatency := flag.Float64("chaos-latency", 0, "chaos: injected-latency probability [0,1]")
	chaosMaxLatency := flag.Duration("chaos-max-latency", 50*time.Millisecond, "chaos: injected-latency bound")
	chaosTrap := flag.Float64("chaos-trap", 0, "chaos: forced-trap probability [0,1]")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()

	// The daemon always runs a recorder: /metrics must be live without
	// any observability flags.
	tool, err := expose.Start(expose.Options{
		ToolOptions: telemetry.ToolOptions{
			Trace:        *obs.Trace,
			TraceOut:     *obs.TraceOut,
			Metrics:      *obs.Metrics,
			CPUProfile:   *obs.CPUProfile,
			MemProfile:   *obs.MemProfile,
			NeedRecorder: true,
		},
		DebugAddr: *obs.DebugAddr,
		Sample:    *obs.Sample,
	})
	if err != nil {
		fatal(nil, err)
	}

	// Install the handler before the listener exists: once the address
	// is announced a supervisor may signal at any moment.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)

	srv, err := compressd.Start(*addr, compressd.Config{
		Workers: *workers,
		BaseLimits: guard.Limits{
			MaxSteps:     *maxSteps,
			MaxMem:       *maxMem,
			MaxCallDepth: *maxDepth,
		},
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBody,
		DrainTimeout:   *drainTimeout,
		Admission: compressd.AdmissionConfig{
			MaxInFlight: *maxInflight,
			MaxQueue:    *maxQueue,
			MaxEstMem:   *maxEstMem,
			RetryAfter:  *retryAfter,
		},
		Chaos: compressd.ChaosConfig{
			Seed:        *chaosSeed,
			CorruptRate: *chaosCorrupt,
			LatencyRate: *chaosLatency,
			MaxLatency:  *chaosMaxLatency,
			TrapRate:    *chaosTrap,
		},
		Rec: tool.Rec,
	})
	if err != nil {
		fatal(tool, err)
	}
	// Stdout, unbuffered by newline: supervisors and the e2e tests
	// scrape the bound address from this line.
	fmt.Printf("compressd: listening on %s\n", srv.Addr())

	got := <-sig
	fmt.Fprintf(os.Stderr, "compressd: %v: draining (budget %v)\n", got, *drainTimeout)

	code := 0
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(os.Stderr, "compressd: forced drain: %v\n", err)
		code = 1
	} else {
		fmt.Fprintln(os.Stderr, "compressd: drained cleanly")
	}
	// Flush telemetry (summary, traces, profiles) before exit.
	if err := tool.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "compressd:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func fatal(tool *expose.Tool, err error) {
	fmt.Fprintln(os.Stderr, "compressd:", err)
	tool.Fail("compressd: " + err.Error())
	os.Exit(1)
}
