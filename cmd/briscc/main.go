// Command briscc compiles MiniC to a BRISC object — the paper's
// interpretable compressed executable format.
//
// Usage:
//
//	briscc file.mc -o file.brisc
//	briscc file.mc -stats          section sizes and ratios
//	briscc file.mc -dict           print the learned dictionary
//	briscc file.mc -K 20 -abundant -no-combine -no-specialize
//
// Observability (shared across the tools):
//
//	-metrics             telemetry summary on stderr
//	-trace file.jsonl    machine-readable span/counter trace
//	-trace-out f.json    Chrome trace_event trace (load in Perfetto)
//	-debug-addr a:p      live debug endpoints (/metrics, /snapshot, /spans, /flight, /debug/pprof)
//	-sample d            runtime sampler interval
//	-cpuprofile f.pprof  CPU profile
//	-memprofile f.pprof  heap profile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/brisc"
	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/flatezip"
	"repro/internal/native"
	"repro/internal/telemetry"
	"repro/internal/telemetry/expose"
	"repro/internal/vm"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

func main() {
	out := flag.String("o", "", "output path for the BRISC object")
	k := flag.Int("K", 20, "candidates adopted per pass (paper: 20)")
	abundant := flag.Bool("abundant", false, "abundant-memory mode (B = P)")
	noCombine := flag.Bool("no-combine", false, "ablation: disable opcode combination")
	noSpecialize := flag.Bool("no-specialize", false, "ablation: disable operand specialization")
	noEPI := flag.Bool("no-epi", false, "disable the epi epilogue macro")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU, 1 = serial; output is identical either way")
	optimize := flag.Bool("O", false, "peephole-optimize before compressing")
	stats := flag.Bool("stats", false, "print size statistics")
	dict := flag.Bool("dict", false, "print the learned dictionary")
	dictOut := flag.String("dict-out", "", "save the learned dictionary for reuse")
	dictIn := flag.String("dict-in", "", "compress with a previously trained dictionary")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: briscc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var err error
	tool, err = obs.Start()
	if err != nil {
		fatal(err)
	}
	rec := tool.Rec
	// -stats is rendered through the telemetry summary sink so the
	// three CLIs share one report format; it gets a private recorder
	// when no telemetry flag created one.
	if *stats && rec == nil {
		rec = telemetry.New()
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	sp := rec.StartSpan("briscc.frontend")
	mod, err := cc.Compile(flag.Arg(0), string(src))
	if err != nil {
		sp.End()
		fatal(err)
	}
	prog, err := codegen.Generate(mod, codegen.Options{})
	sp.End()
	if err != nil {
		fatal(err)
	}
	if *optimize {
		prog = codegen.Peephole(prog)
	}
	opt := brisc.Options{
		K:              *k,
		AbundantMemory: *abundant,
		NoCombine:      *noCombine,
		NoSpecialize:   *noSpecialize,
		NoEPI:          *noEPI,
		Workers:        *workers,
	}
	var obj *brisc.Object
	if *dictIn != "" {
		data, err := os.ReadFile(*dictIn)
		if err != nil {
			fatal(err)
		}
		trained, err := brisc.DecodeDict(data)
		if err != nil {
			fatal(err)
		}
		obj, err = brisc.CompressWithDict(prog, trained, opt)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		obj, err = brisc.CompressTraced(prog, opt, rec)
		if err != nil {
			fatal(err)
		}
	}
	if *dictOut != "" {
		if err := os.WriteFile(*dictOut, brisc.EncodeDict(obj.LearnedDict()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote dictionary %s (%d patterns)\n",
			*dictOut, len(obj.LearnedDict()))
	}
	if *stats {
		sb := obj.Size()
		nat := native.VariableSize(prog.Code)
		gz := len(flatezip.Compress(native.EncodeVariable(prog.Code)))
		rec.Add("briscc.instructions", int64(len(prog.Code)))
		rec.Add("briscc.native_bytes", int64(nat))
		rec.Add("briscc.gzip_native_bytes", int64(gz))
		rec.Add("briscc.code_stream_bytes", int64(sb.CodeBytes))
		rec.Add("briscc.dict_bytes", int64(sb.DictBytes))
		rec.Add("briscc.markov_table_bytes", int64(sb.TableBytes))
		rec.Add("briscc.block_table_bytes", int64(sb.BlockBytes))
		rec.Add("briscc.total_code_bytes", int64(sb.CodeSize()))
		rec.Add("briscc.learned_patterns", int64(sb.NumPatterns))
		rec.Add("briscc.passes", int64(obj.Passes))
		rec.SetGauge("briscc.ratio.gzip_vs_native", float64(gz)/float64(nat))
		rec.SetGauge("briscc.ratio.brisc_vs_native", float64(sb.CodeSize())/float64(nat))
		telemetry.WriteSummary(os.Stdout, rec)
	}
	if *dict {
		for i, p := range obj.Dict[vm.NumOpcodes:] {
			fmt.Printf("%4d: %s\n", vm.NumOpcodes+i, p)
		}
	}
	if *out != "" {
		data := obj.Bytes()
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(data))
	}
	if err := tool.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "briscc:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
