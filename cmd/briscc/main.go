// Command briscc compiles MiniC to a BRISC object — the paper's
// interpretable compressed executable format.
//
// Usage:
//
//	briscc file.mc -o file.brisc
//	briscc file.mc -stats          section sizes and ratios
//	briscc file.mc -dict           print the learned dictionary
//	briscc file.mc -K 20 -abundant -no-combine -no-specialize
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/brisc"
	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/flatezip"
	"repro/internal/native"
	"repro/internal/vm"
)

func main() {
	out := flag.String("o", "", "output path for the BRISC object")
	k := flag.Int("K", 20, "candidates adopted per pass (paper: 20)")
	abundant := flag.Bool("abundant", false, "abundant-memory mode (B = P)")
	noCombine := flag.Bool("no-combine", false, "ablation: disable opcode combination")
	noSpecialize := flag.Bool("no-specialize", false, "ablation: disable operand specialization")
	noEPI := flag.Bool("no-epi", false, "disable the epi epilogue macro")
	optimize := flag.Bool("O", false, "peephole-optimize before compressing")
	stats := flag.Bool("stats", false, "print size statistics")
	dict := flag.Bool("dict", false, "print the learned dictionary")
	dictOut := flag.String("dict-out", "", "save the learned dictionary for reuse")
	dictIn := flag.String("dict-in", "", "compress with a previously trained dictionary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: briscc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := cc.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := codegen.Generate(mod, codegen.Options{})
	if err != nil {
		fatal(err)
	}
	if *optimize {
		prog = codegen.Peephole(prog)
	}
	opt := brisc.Options{
		K:              *k,
		AbundantMemory: *abundant,
		NoCombine:      *noCombine,
		NoSpecialize:   *noSpecialize,
		NoEPI:          *noEPI,
	}
	var obj *brisc.Object
	if *dictIn != "" {
		data, err := os.ReadFile(*dictIn)
		if err != nil {
			fatal(err)
		}
		trained, err := brisc.DecodeDict(data)
		if err != nil {
			fatal(err)
		}
		obj, err = brisc.CompressWithDict(prog, trained, opt)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		obj, err = brisc.Compress(prog, opt)
		if err != nil {
			fatal(err)
		}
	}
	if *dictOut != "" {
		if err := os.WriteFile(*dictOut, brisc.EncodeDict(obj.LearnedDict()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote dictionary %s (%d patterns)\n",
			*dictOut, len(obj.LearnedDict()))
	}
	if *stats {
		sb := obj.Size()
		nat := native.VariableSize(prog.Code)
		gz := len(flatezip.Compress(native.EncodeVariable(prog.Code)))
		fmt.Printf("instructions:       %d\n", len(prog.Code))
		fmt.Printf("native (x86-like):  %d bytes (1.00)\n", nat)
		fmt.Printf("gzipped native:     %d bytes (%.2f)\n", gz, float64(gz)/float64(nat))
		fmt.Printf("BRISC code stream:  %d bytes\n", sb.CodeBytes)
		fmt.Printf("BRISC dictionary:   %d bytes (%d learned patterns, %d passes)\n",
			sb.DictBytes, sb.NumPatterns, obj.Passes)
		fmt.Printf("BRISC Markov tables:%d bytes\n", sb.TableBytes)
		fmt.Printf("BRISC block table:  %d bytes (%d blocks)\n", sb.BlockBytes, sb.NumBlocks)
		fmt.Printf("BRISC total code:   %d bytes (%.2f)\n", sb.CodeSize(),
			float64(sb.CodeSize())/float64(nat))
	}
	if *dict {
		for i, p := range obj.Dict[vm.NumOpcodes:] {
			fmt.Printf("%4d: %s\n", vm.NumOpcodes+i, p)
		}
	}
	if *out != "" {
		data := obj.Bytes()
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "briscc:", err)
	os.Exit(1)
}
