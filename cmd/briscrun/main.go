// Command briscrun executes a BRISC object, either by in-place
// interpretation (the memory-bottleneck path) or by JIT translation to
// native VM code (the speed path).
//
// Usage:
//
//	briscrun file.brisc           interpret in place
//	briscrun -jit file.brisc      JIT to native code, then run
//	briscrun -time file.brisc     report execution statistics
//
// Resource limits (untrusted objects):
//
//	-max-steps n   abort after n executed instructions
//	-timeout d     abort after wall-clock duration d (e.g. 2s)
//
// Observability (shared across the tools):
//
//	-metrics             telemetry summary on stderr
//	-trace file.jsonl    machine-readable span/counter trace
//	-cpuprofile f.pprof  CPU profile
//	-memprofile f.pprof  heap profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/brisc"
	"repro/internal/guard"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

func main() {
	jit := flag.Bool("jit", false, "JIT to native code before running")
	cache := flag.Bool("cache", false, "interpret with the decoded-unit cache (faster, larger working set)")
	timing := flag.Bool("time", false, "report execution statistics")
	maxSteps := flag.Int64("max-steps", 0, "abort after executing this many instructions (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock duration, e.g. 2s (0 = unlimited)")
	workers := flag.Int("workers", 0, "cap runtime parallelism (GOMAXPROCS); 0 = one per CPU")
	trace := flag.String("trace", "", "write a JSONL telemetry trace to this file")
	metrics := flag.Bool("metrics", false, "print a telemetry summary to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: briscrun [-jit] [-time] file.brisc")
		os.Exit(2)
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	tool, err := telemetry.StartTool(telemetry.ToolOptions{
		Trace: *trace, Metrics: *metrics,
		CPUProfile: *cpuprofile, MemProfile: *memprofile,
	})
	if err != nil {
		fatal(err)
	}
	// Flush traces/metrics even on the error path, so governor trap
	// counters reach the summary when a limit kills the run.
	cleanup = func() { tool.Close() }
	rec := tool.Rec

	limits := guard.Limits{MaxSteps: *maxSteps}
	if *timeout > 0 {
		limits = limits.WithTimeout(*timeout)
	}
	// -time renders through the telemetry summary sink (one format
	// across the CLIs); give it a private recorder when no telemetry
	// flag created one.
	if *timing && rec == nil {
		rec = telemetry.New()
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	obj, err := brisc.Parse(data)
	if err != nil {
		fatal(err)
	}
	var code int32
	if *jit {
		prog, err := brisc.JITTraced(obj, rec)
		if err != nil {
			fatal(err)
		}
		m := vm.NewMachine(prog, 0, os.Stdout)
		m.SetRecorder(rec)
		if err := m.SetLimits(limits); err != nil {
			fatal(err)
		}
		sp := rec.StartSpan("briscrun.run", telemetry.String("mode", "jit"))
		code, err = m.Run(0)
		sp.End()
		if err != nil {
			fatal(err)
		}
	} else {
		it := brisc.NewInterp(obj, 0, os.Stdout)
		if *cache {
			it.EnableCache()
		}
		it.SetRecorder(rec)
		if err := it.SetLimits(limits); err != nil {
			fatal(err)
		}
		sp := rec.StartSpan("briscrun.run", telemetry.String("mode", "interp"))
		code, err = it.Run(0)
		sp.End()
		if err != nil {
			fatal(err)
		}
		if rec.Enabled() {
			rec.SetGauge("briscrun.cache_bytes", float64(it.CacheBytes()))
		}
	}
	if *timing && !*metrics { // -metrics already prints the summary at Close
		telemetry.WriteSummary(os.Stderr, rec)
	}
	if err := tool.Close(); err != nil {
		fatal(err)
	}
	os.Exit(int(code))
}

// cleanup flushes telemetry before a fatal exit; set once StartTool
// succeeds.
var cleanup func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "briscrun:", err)
	if cleanup != nil {
		cleanup()
	}
	os.Exit(1)
}
