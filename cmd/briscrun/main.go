// Command briscrun executes a BRISC object, either by in-place
// interpretation (the memory-bottleneck path) or by JIT translation to
// native VM code (the speed path).
//
// Usage:
//
//	briscrun file.brisc           interpret in place
//	briscrun -jit file.brisc      JIT to native code, then run
//	briscrun -time file.brisc     report execution statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/brisc"
	"repro/internal/vm"
)

func main() {
	jit := flag.Bool("jit", false, "JIT to native code before running")
	cache := flag.Bool("cache", false, "interpret with the decoded-unit cache (faster, larger working set)")
	timing := flag.Bool("time", false, "report execution statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: briscrun [-jit] [-time] file.brisc")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	obj, err := brisc.Parse(data)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var code int32
	var steps int64
	if *jit {
		prog, err := brisc.JIT(obj)
		if err != nil {
			fatal(err)
		}
		jitDone := time.Now()
		m := vm.NewMachine(prog, 0, os.Stdout)
		code, err = m.Run(0)
		if err != nil {
			fatal(err)
		}
		steps = m.Steps
		if *timing {
			fmt.Fprintf(os.Stderr, "jit: %v, run: %v, %d instructions\n",
				jitDone.Sub(start), time.Since(jitDone), steps)
		}
	} else {
		it := brisc.NewInterp(obj, 0, os.Stdout)
		if *cache {
			it.EnableCache()
		}
		code, err = it.Run(0)
		if err != nil {
			fatal(err)
		}
		steps = it.Steps
		if *timing {
			fmt.Fprintf(os.Stderr, "interp: %v, %d instructions in %d units, cache %d bytes\n",
				time.Since(start), it.Steps, it.Units, it.CacheBytes())
		}
	}
	os.Exit(int(code))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "briscrun:", err)
	os.Exit(1)
}
