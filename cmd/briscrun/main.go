// Command briscrun executes a BRISC object, either by in-place
// interpretation (the memory-bottleneck path) or by JIT translation to
// native VM code (the speed path).
//
// Usage:
//
//	briscrun file.brisc           interpret in place
//	briscrun -jit file.brisc      JIT to native code, then run
//	briscrun -paged file.brisc    execute in place from the compressed page store
//	briscrun -time file.brisc     report execution statistics
//
// Execute-in-place (-paged) never decodes the whole object: the code
// stream is packed into a compressed page store and pages are faulted
// in and predecoded on demand, with residency bounded by -page-cache
// (pages) and -page-bytes (decoded bytes). -layout takes the JSON
// profile from `compscope hot -json file.json` and packs hot blocks
// onto shared pages, cutting the fault rate (paging.xip.* telemetry
// reports faults, hits, evictions, and peak residency).
//
//	-page-size n      raw code bytes per page (default 512)
//	-page-cache n     max resident decoded pages (0 = unbounded)
//	-page-bytes n     max resident decoded bytes (0 = unbounded)
//	-layout file.json profile-driven page layout (compscope hot -json)
//
// Resource limits (untrusted objects):
//
//	-max-steps n   abort after n executed instructions
//	-timeout d     abort after wall-clock duration d (e.g. 2s)
//	-max-mem n     abort when memory + resident decoded pages exceed n bytes
//
// Observability (shared across the tools):
//
//	-metrics             telemetry summary on stderr
//	-trace file.jsonl    machine-readable span/counter trace
//	-trace-out f.json    Chrome trace_event trace (load in Perfetto)
//	-debug-addr a:p      live debug endpoints (/metrics, /snapshot, /spans, /flight, /debug/pprof)
//	-sample d            runtime sampler interval
//	-cpuprofile f.pprof  CPU profile
//	-memprofile f.pprof  heap profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/attrib"
	"repro/internal/brisc"
	"repro/internal/guard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/expose"
	"repro/internal/vm"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

func main() {
	jit := flag.Bool("jit", false, "JIT to native code before running")
	cache := flag.Bool("cache", false, "interpret with the decoded-unit cache (faster, larger working set)")
	paged := flag.Bool("paged", false, "execute in place from the compressed page store (demand paging)")
	pageSize := flag.Int("page-size", 0, "raw code bytes per page for -paged (0 = default 512)")
	pageCache := flag.Int("page-cache", 0, "max resident decoded pages for -paged (0 = unbounded)")
	pageBytes := flag.Int("page-bytes", 0, "max resident decoded bytes for -paged (0 = unbounded)")
	layout := flag.String("layout", "", "page layout profile for -paged: JSON from `compscope hot -json`")
	timing := flag.Bool("time", false, "report execution statistics")
	maxSteps := flag.Int64("max-steps", 0, "abort after executing this many instructions (0 = unlimited)")
	maxMem := flag.Int("max-mem", 0, "abort when VM memory plus resident decoded pages exceed this many bytes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock duration, e.g. 2s (0 = unlimited)")
	workers := flag.Int("workers", 0, "cap runtime parallelism (GOMAXPROCS); 0 = one per CPU")
	obs := expose.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: briscrun [-jit] [-time] file.brisc")
		os.Exit(2)
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var err error
	tool, err = obs.Start()
	if err != nil {
		fatal(err)
	}
	rec := tool.Rec
	metrics := obs.Metrics

	if *paged && *jit {
		fatal(fmt.Errorf("-paged and -jit are mutually exclusive"))
	}
	limits := guard.Limits{MaxSteps: *maxSteps, MaxMem: *maxMem}
	if *timeout > 0 {
		limits = limits.WithTimeout(*timeout)
	}
	// -time renders through the telemetry summary sink (one format
	// across the CLIs); give it a private recorder when no telemetry
	// flag created one.
	if *timing && rec == nil {
		rec = telemetry.New()
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	obj, err := brisc.Parse(data)
	if err != nil {
		fatal(err)
	}
	var code int32
	if *jit {
		prog, err := brisc.JITTraced(obj, rec)
		if err != nil {
			fatal(err)
		}
		m := vm.NewMachine(prog, 0, os.Stdout)
		m.SetRecorder(rec)
		if err := m.SetLimits(limits); err != nil {
			fatal(err)
		}
		sp := rec.StartSpan("briscrun.run", telemetry.String("mode", "jit"))
		code, err = m.Run(0)
		sp.End()
		if err != nil {
			fatal(err)
		}
	} else {
		it := brisc.NewInterp(obj, 0, os.Stdout)
		if *paged {
			opt := brisc.XIPOptions{PageSize: *pageSize}
			if *layout != "" {
				prof, err := os.ReadFile(*layout)
				if err != nil {
					fatal(err)
				}
				hr, err := attrib.ParseHotJSON(prof)
				if err != nil {
					fatal(err)
				}
				opt.BlockCounts = hr.BlockCounts()
			}
			img, err := brisc.BuildXIP(obj, opt)
			if err != nil {
				fatal(err)
			}
			if err := it.EnableXIP(img, *pageCache, *pageBytes); err != nil {
				fatal(err)
			}
		} else if *cache {
			it.EnableCache()
		}
		it.SetRecorder(rec)
		if err := it.SetLimits(limits); err != nil {
			fatal(err)
		}
		runMode := "interp"
		if *paged {
			runMode = "paged"
		}
		sp := rec.StartSpan("briscrun.run", telemetry.String("mode", runMode))
		code, err = it.Run(0)
		sp.End()
		if err != nil {
			fatal(err)
		}
		if rec.Enabled() {
			rec.SetGauge("briscrun.cache_bytes", float64(it.CacheBytes()))
		}
	}
	if *timing && !*metrics { // -metrics already prints the summary at Close
		telemetry.WriteSummary(os.Stderr, rec)
	}
	if err := tool.Close(); err != nil {
		fatal(err)
	}
	os.Exit(int(code))
}

// fatal trips the flight recorder (dumping the last events to stderr)
// and flushes traces/metrics before exiting, so governor trap counters
// reach the summary when a limit kills the run.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "briscrun:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
