// Command compscope is the compression X-ray: it attributes every
// byte of a WIR2 or BRISC artifact to its origin — section, stream,
// function, dictionary entry — and joins the static picture with
// dynamic execution counts.
//
// Usage:
//
//	compscope report [flags] file...   attribute each artifact (table + telemetry)
//	compscope diff   [flags] old new   attribute two artifacts, rank the deltas
//	compscope hot    [flags] file      run the interpreter, rank dictionary
//	                                   entries by executions per static byte
//
// Inputs may be .mc sources (compiled on the fly; -format selects the
// artifact kind) or serialized .wire / .brisc artifacts (detected by
// magic). report always enforces the accounting invariant — if the
// attributed bytes do not sum exactly to the artifact size, compscope
// exits nonzero.
//
// In hot mode, -json writes the full static×dynamic join (entries,
// opcodes, and per-basic-block execution counts) as machine-readable
// JSON — the profile `briscrun -layout` consumes to pack hot blocks
// onto shared pages for execute-in-place.
//
// Observability (shared across the tools):
//
//	-metrics             telemetry summary on stderr
//	-trace file.jsonl    machine-readable span/counter trace
//	-json file           report/diff: attribution gauges as a JSON snapshot;
//	                     hot: the HotReport profile ("-" = stdout)
//	-cpuprofile f.pprof  CPU profile
//	-memprofile f.pprof  heap profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/attrib"
	"repro/internal/brisc"
	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/telemetry"
	"repro/internal/telemetry/expose"
	"repro/internal/wire"
)

// tool is the process observability state; fatal trips its flight
// recorder and flushes it before exit.
var tool *expose.Tool

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet("compscope "+mode, flag.ExitOnError)
	format := fs.String("format", "", "artifact kind for .mc inputs: wire, brisc, or both (default: both for report, wire for diff, brisc for hot)")
	jsonOut := fs.String("json", "", `write a JSON snapshot to this file ("-" = stdout); hot mode emits the block-level profile for briscrun -layout`)
	obs := expose.AddFlags(fs)
	switch mode {
	case "report", "diff", "hot":
	default:
		usage()
	}
	fs.Parse(os.Args[2:])

	var err error
	tool, err = obs.Start()
	if err != nil {
		fatal(err)
	}
	rec := tool.Rec
	// -json renders through the telemetry JSON sink; give it a private
	// recorder when no telemetry flag created one.
	if *jsonOut != "" && rec == nil {
		rec = telemetry.New()
	}

	var hotReport *attrib.HotReport
	switch mode {
	case "report":
		if fs.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: compscope report [flags] file...")
			os.Exit(2)
		}
		for _, path := range fs.Args() {
			for _, art := range load(path, kinds(*format, "both")) {
				attrib.Format(os.Stdout, art.Report)
				art.Report.Publish(rec)
			}
		}
	case "diff":
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: compscope diff [flags] old new")
			os.Exit(2)
		}
		olds := load(fs.Arg(0), kinds(*format, "wire"))
		news := load(fs.Arg(1), kinds(*format, "wire"))
		if len(olds) != 1 || len(news) != 1 {
			fatal(fmt.Errorf("diff needs exactly one artifact per side; use -format wire or -format brisc"))
		}
		d, err := attrib.Diff(olds[0].Report, news[0].Report)
		if err != nil {
			fatal(err)
		}
		attrib.FormatDiff(os.Stdout, d)
	case "hot":
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: compscope hot [flags] file")
			os.Exit(2)
		}
		arts := load(fs.Arg(0), kinds(*format, "brisc"))
		art := arts[0]
		if art.Brisc == nil {
			fatal(fmt.Errorf("hot needs a BRISC artifact (got %s)", art.Report.Kind))
		}
		hr, err := runHot(fs.Arg(0), art, rec)
		if err != nil {
			fatal(err)
		}
		attrib.FormatHot(os.Stdout, hr)
		hotReport = hr
	}

	if *jsonOut != "" {
		w := io.Writer(os.Stdout)
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		// hot's -json is the machine-readable profile consumed by
		// briscrun -layout; the other modes snapshot telemetry gauges.
		if hotReport != nil {
			err = attrib.WriteHotJSON(w, hotReport)
		} else {
			err = telemetry.WriteJSON(w, rec)
		}
		if err != nil {
			fatal(err)
		}
	}
	if err := tool.Close(); err != nil {
		fatal(err)
	}
}

// kinds resolves the -format flag for .mc inputs.
func kinds(format, dflt string) []string {
	if format == "" {
		format = dflt
	}
	switch format {
	case "wire":
		return []string{"wire"}
	case "brisc":
		return []string{"brisc"}
	case "both":
		return []string{"wire", "brisc"}
	}
	fatal(fmt.Errorf("unknown -format %q (want wire, brisc, or both)", format))
	return nil
}

// load reads one input: a serialized artifact (dispatched on magic) or
// a .mc source compiled to the requested artifact kinds. Analyze
// enforces the 100%-accounting invariant, so a mis-attributed artifact
// exits nonzero here.
func load(path string, mcKinds []string) []*attrib.Artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if !strings.HasSuffix(path, ".mc") {
		art, err := attrib.Analyze(path, data)
		if err != nil {
			fatal(err)
		}
		return []*attrib.Artifact{art}
	}
	mod, err := cc.Compile(path, string(data))
	if err != nil {
		fatal(err)
	}
	var arts []*attrib.Artifact
	for _, kind := range mcKinds {
		var artifact []byte
		var label string
		switch kind {
		case "wire":
			label = path + " (wire)"
			if artifact, err = wire.Compress(mod); err != nil {
				fatal(err)
			}
		case "brisc":
			label = path + " (brisc)"
			prog, gerr := codegen.Generate(mod, codegen.Options{})
			if gerr != nil {
				fatal(gerr)
			}
			obj, cerr := brisc.Compress(prog, brisc.Options{})
			if cerr != nil {
				fatal(cerr)
			}
			artifact = obj.Bytes()
		}
		art, err := attrib.Analyze(label, artifact)
		if err != nil {
			fatal(err)
		}
		arts = append(arts, art)
	}
	return arts
}

// runHot executes the artifact in the BRISC interpreter, tracing
// per-unit execution counts and per-opcode dispatch counters, and
// joins them with the static attribution. The traced run uses a
// private recorder so program-level counters don't pollute -metrics
// output; the headline numbers are re-published to rec.
func runHot(source string, art *attrib.Artifact, rec *telemetry.Recorder) (*attrib.HotReport, error) {
	counts := map[int32]int64{}
	it := brisc.NewInterp(art.Brisc.Obj, 0, os.Stdout)
	it.Trace = func(off int32) { counts[off]++ }
	priv := telemetry.New()
	it.SetRecorder(priv)
	if _, err := it.Run(0); err != nil {
		return nil, err
	}
	it.FlushTelemetry()
	dispatch := map[string]int64{}
	for k, v := range priv.Counters() {
		if strings.HasPrefix(k, "brisc.interp.dispatch.") {
			dispatch[strings.TrimPrefix(k, "brisc.interp.dispatch.")] = v
		}
	}
	hr := attrib.Hot(source, art.Brisc, counts, dispatch)
	if rec.Enabled() {
		rec.SetGauge("attrib.hot.units_executed", float64(hr.TotalDyn))
		for i, e := range hr.Entries {
			if i >= 5 {
				break
			}
			rec.SetGauge(fmt.Sprintf("attrib.hot.entry.%d.density", e.Pid), e.Density)
		}
	}
	return hr, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: compscope <report|diff|hot> [flags] file...
  report  attribute every byte of each artifact (exits nonzero unless 100% accounted)
  diff    attribute two artifacts and rank where the bytes moved
  hot     run the BRISC interpreter and rank dictionary entries by dynamic density`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compscope:", err)
	tool.Fail("fatal: " + err.Error())
	os.Exit(1)
}
