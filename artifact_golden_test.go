package codecomp

// Golden artifact-identity suite: the fast-path work (table-driven
// Huffman, word-at-a-time bit I/O, predecoded BRISC dispatch) must
// never change a single output byte. Each entry pins the SHA-256 of a
// compressed artifact built from a deterministic input; regenerate with
//
//	UPDATE_ARTIFACT_HASHES=1 go test -run TestArtifactGolden .
//
// only after an *intentional* format change, and say so in the commit.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"sort"
	"testing"

	"repro/internal/brisc"
	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/wire"
	"repro/internal/workload"
)

const goldenPath = "testdata/artifact_hashes.json"

func buildArtifacts(t *testing.T) map[string][]byte {
	t.Helper()
	arts := map[string][]byte{}
	for _, p := range []workload.Profile{workload.Lcc, workload.Gcc, workload.Wep} {
		mod, err := cc.Compile(p.Name, workload.Generate(p))
		if err != nil {
			t.Fatalf("compile %s: %v", p.Name, err)
		}
		wb, err := wire.Compress(mod)
		if err != nil {
			t.Fatalf("wire %s: %v", p.Name, err)
		}
		arts["wir2/"+p.Name] = wb
		wx, err := wire.CompressIndexed(mod, wire.Options{})
		if err != nil {
			t.Fatalf("wirx %s: %v", p.Name, err)
		}
		arts["wirx/"+p.Name] = wx
		prog, err := codegen.Generate(mod, codegen.Options{})
		if err != nil {
			t.Fatalf("codegen %s: %v", p.Name, err)
		}
		obj, err := brisc.Compress(prog, brisc.Options{})
		if err != nil {
			t.Fatalf("brisc %s: %v", p.Name, err)
		}
		arts["brs1/"+p.Name] = obj.Bytes()
	}
	for name, src := range workload.Kernels() {
		mod, err := cc.Compile(name, src)
		if err != nil {
			t.Fatalf("compile kernel %s: %v", name, err)
		}
		wb, err := wire.Compress(mod)
		if err != nil {
			t.Fatalf("wire kernel %s: %v", name, err)
		}
		arts["wir2/kernel-"+name] = wb
		prog, err := codegen.Generate(mod, codegen.Options{})
		if err != nil {
			t.Fatalf("codegen kernel %s: %v", name, err)
		}
		obj, err := brisc.Compress(prog, brisc.Options{})
		if err != nil {
			t.Fatalf("brisc kernel %s: %v", name, err)
		}
		arts["brs1/kernel-"+name] = obj.Bytes()
	}
	return arts
}

func TestArtifactGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads are slow; run without -short")
	}
	arts := buildArtifacts(t)
	got := map[string]string{}
	for k, v := range arts {
		sum := sha256.Sum256(v)
		got[k] = hex.EncodeToString(sum[:])
	}
	if os.Getenv("UPDATE_ARTIFACT_HASHES") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d hashes to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with UPDATE_ARTIFACT_HASHES=1): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("%s: artifact no longer produced", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: artifact bytes changed: %s != golden %s", k, got[k][:16], want[k][:16])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: artifact missing from golden file (regenerate)", k)
		}
	}
}
